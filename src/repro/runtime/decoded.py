"""Pre-decoded instruction streams for the interpreter hot path.

The reference interpreter pays, on *every* retired instruction, for work
whose answer never changes across a run: two dict lookups to find the
current block, an ``isinstance`` chain per operand, a string comparison
ladder to resolve a BINOP operator, and a dict probe to classify the callee
of a CALL.  All of that is a pure function of the (finalized) module, so it
can be done once per module instead of once per step.

:func:`decode_program` lowers every basic block into a flat list of *step
records*::

    (run, cost, opkey, ins)

where ``run(interp, tid, thread, frame)`` is a closure with everything
pre-bound — operand register names, constants, resolved global/string
addresses, the per-opcode model cost, the callee's entry block's *decoded*
list (so calls and branches link decoded code to decoded code without a
dict lookup) — ``cost`` is the instruction's ``OPCODE_COST``, ``opkey`` the
opcode's value string for the per-opcode counters, and ``ins`` the original
:class:`~repro.lang.ir.Instr` (handed to step subscribers and hooks).

Closures advance ``frame.index`` themselves (the successor index is
pre-bound), and terminators install the target block's decoded list into
``frame.dcode`` directly, so the interpreter loop is reduced to: pick a
thread, index a list, call a closure.

Semantics contract: a decoded program must be *observationally identical*
to the reference path — same events in the same order, same failure
reports, same cost totals, same stdout.  Decode-time resolution failures
(an unknown global, a ``FuncRef`` used as a value, an out-of-range string
index) therefore compile to closures that raise the same exception the
reference interpreter would have raised, at execution time, instead of
failing the decode.

Address pre-binding is sound because :class:`~repro.runtime.memory.Memory`
allocates global and string bases by deterministic bump allocation in
module declaration order; replaying the mapping on a scratch ``Memory``
yields exactly the addresses every future interpreter of this module will
assign (entry-point string *arguments* are mapped after the interned
strings and cannot shift them).

The per-module cache (:func:`decoded_program`) is keyed by module identity
plus :attr:`~repro.lang.ir.Module.analysis_epoch`, so re-finalizing a
module after an edit transparently rebuilds the stream;
:meth:`repro.analysis.context.AnalysisContext.decoded_program` wraps the
same cache with the context's hit/miss counters.
"""

from __future__ import annotations

import operator as _operator
from typing import Callable, Dict, List, Tuple
from weakref import WeakKeyDictionary

from ..lang.ir import (
    ConstInt,
    FuncRef,
    GlobalRef,
    Instr,
    Module,
    NullPtr,
    Opcode,
    Register,
    StrConst,
)
from .costmodel import OPCODE_COST
from .events import BranchEvent, FlowEvent, FlowKind, MemEvent
from .failures import FailureKind
from .memory import (
    GLOBAL_BASE,
    HEAP_BASE,
    STACK_BASE,
    STACK_STRIDE,
    STRING_BASE,
    Memory,
)
from .threads import Frame

#: One decoded step: (run closure, model cost, opcode key, source Instr).
StepRecord = Tuple[Callable, int, str, Instr]

# Comparison lambdas return int (not bool): the reference interpreter's
# ``int(a < b)`` feeds values that reach print()/stdout, where ``str(True)``
# and ``str(1)`` differ.
_BINOP_FNS: Dict[str, Callable[[int, int], int]] = {
    "+": _operator.add,
    "-": _operator.sub,
    "*": _operator.mul,
    "&": _operator.and_,
    "|": _operator.or_,
    "^": _operator.xor,
    "==": lambda a, b: 1 if a == b else 0,
    "!=": lambda a, b: 1 if a != b else 0,
    "<": lambda a, b: 1 if a < b else 0,
    "<=": lambda a, b: 1 if a <= b else 0,
    ">": lambda a, b: 1 if a > b else 0,
    ">=": lambda a, b: 1 if a >= b else 0,
    "<<": lambda a, b: a << (b & 63),
    ">>": lambda a, b: a >> (b & 63),
}

_UNOP_FNS: Dict[str, Callable[[int], int]] = {
    "-": _operator.neg,
    "!": lambda a: 1 if a == 0 else 0,
    "~": _operator.invert,
}


class DecodedProgram:
    """The decoded step-record lists for every basic block of a module."""

    __slots__ = ("module", "epoch", "blocks")

    def __init__(self, module: Module) -> None:
        if not module.finalized:
            raise ValueError("module must be finalized")
        self.module = module
        self.epoch = module.analysis_epoch
        #: (function name, block label) -> [StepRecord, ...]
        self.blocks: Dict[Tuple[str, str], List[StepRecord]] = {}
        self._build()

    def block_code(self, func: str, block: str) -> List[StepRecord]:
        return self.blocks[(func, block)]

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        module = self.module
        # Replay the interpreter's deterministic global/string mapping on a
        # scratch address space to learn the bases every run will use.
        layout = Memory()
        global_bases = {g.name: layout.map_global(g.name, g.size,
                                                  tuple(g.init))
                        for g in module.globals.values()}
        string_bases = [layout.map_string(s) for s in module.strings]
        # Two phases so terminators/calls can pre-link their target lists:
        # create every (empty) block list first, then fill them.
        for fname, func in module.functions.items():
            for bb in func:
                self.blocks[(fname, bb.label)] = []
        for fname, func in module.functions.items():
            for bb in func:
                records = self.blocks[(fname, bb.label)]
                for idx, ins in enumerate(bb.instrs):
                    run = _compile(self, ins, idx + 1, fname,
                                   global_bases, string_bases)
                    records.append((run, OPCODE_COST[ins.opcode],
                                    ins.opcode.value, ins))


# ---------------------------------------------------------------------------
# Operand specs and accessors
# ---------------------------------------------------------------------------
# An operand decodes to ("reg", name) | ("const", value) | ("raise", make_exc):
# registers stay dynamic, everything resolvable becomes a constant, and
# operands the reference interpreter would fault on at evaluation time defer
# the identical exception to execution time.


def _operand_spec(operand, global_bases, string_bases):
    if isinstance(operand, Register):
        return ("reg", operand.name)
    if isinstance(operand, ConstInt):
        return ("const", operand.value)
    if isinstance(operand, GlobalRef):
        name = operand.name
        if name in global_bases:
            return ("const", global_bases[name])
        return ("raise", lambda: KeyError(name))
    if isinstance(operand, StrConst):
        index = operand.index
        if 0 <= index < len(string_bases):
            return ("const", string_bases[index])
        return ("raise", lambda: IndexError("list index out of range"))
    if isinstance(operand, NullPtr):
        return ("const", 0)
    if isinstance(operand, FuncRef):
        return ("raise",
                lambda: RuntimeError("FuncRef has no runtime value"))
    return ("raise",
            lambda: RuntimeError(f"unknown operand {operand!r}"))


def _getter(spec):
    """A ``frame -> value`` accessor for one operand spec (generic path)."""
    kind, payload = spec
    if kind == "const":
        value = payload

        def get(frame):
            return value
    elif kind == "reg":
        name = payload

        def get(frame):
            try:
                return frame.regs[name]
            except KeyError:
                return 0  # uninitialized registers read as zero
    else:
        make_exc = payload

        def get(frame):
            raise make_exc()
    return get


def _raiser(make_exc):
    def run(interp, tid, thread, frame):
        raise make_exc()
    return run


# ---------------------------------------------------------------------------
# Per-opcode closure factories
# ---------------------------------------------------------------------------


def _compile(prog: DecodedProgram, ins: Instr, next_index: int, fname: str,
             global_bases, string_bases) -> Callable:
    op = ins.opcode
    spec = lambda i: _operand_spec(ins.operands[i],  # noqa: E731
                                   global_bases, string_bases)
    if op in (Opcode.CONST, Opcode.MOVE):
        return _compile_move(ins, spec(0), next_index)
    if op == Opcode.BINOP:
        return _compile_binop(ins, spec(0), spec(1), next_index)
    if op == Opcode.UNOP:
        return _compile_unop(ins, spec(0), next_index)
    if op == Opcode.LOAD:
        return _compile_load(ins, spec(0), next_index)
    if op == Opcode.STORE:
        return _compile_store(ins, spec(0), spec(1), next_index)
    if op == Opcode.ALLOCA:
        return _compile_alloca(ins, next_index)
    if op == Opcode.GEP:
        return _compile_binop(ins, spec(0), spec(1), next_index,
                              fn=_operator.add)
    if op == Opcode.ASSERT:
        return _compile_assert(ins, spec(0), next_index)
    if op == Opcode.JMP:
        return _compile_jmp(prog, ins, fname)
    if op == Opcode.BR:
        return _compile_br(prog, ins, spec(0), fname)
    if op == Opcode.RET:
        return _compile_ret(ins, spec(0) if ins.operands else None, fname)
    if op == Opcode.CALL:
        return _compile_call(prog, ins, global_bases, string_bases)
    return _raiser(lambda: RuntimeError(f"unknown opcode {op}"))


def _compile_move(ins, src_spec, next_index):
    kind, payload = src_spec
    if kind == "raise":
        return _raiser(payload)
    dst = ins.dst.name if ins.dst is not None else None
    if dst is None:
        # Evaluation of a register/constant is side-effect free; a dst-less
        # CONST/MOVE is a pre-advanced no-op.
        def run(interp, tid, thread, frame):
            frame.index = next_index
        return run
    if kind == "const":
        value = payload

        def run(interp, tid, thread, frame):
            frame.regs[dst] = value
            frame.index = next_index
    else:
        src = payload

        def run(interp, tid, thread, frame):
            regs = frame.regs
            try:
                regs[dst] = regs[src]
            except KeyError:
                regs[dst] = 0
            frame.index = next_index
    return run


def _compile_binop(ins, a_spec, b_spec, next_index, fn=None):
    if fn is None:
        op = ins.op
        if op in ("/", "%"):
            return _compile_divmod(ins, a_spec, b_spec, next_index,
                                   is_div=(op == "/"))
        fn = _BINOP_FNS.get(op)
        if fn is None:
            return _raiser(
                lambda: RuntimeError(f"unknown binary operator {op!r}"))
    dst = ins.dst.name if ins.dst is not None else None
    a_kind, a = a_spec
    b_kind, b = b_spec
    if dst is None or a_kind == "raise" or b_kind == "raise":
        # Rare shapes (hand-built IR): keep them correct via generic
        # accessors; the result is computed (raising where the reference
        # interpreter raises) and discarded when there is no destination.
        get_a, get_b = _getter(a_spec), _getter(b_spec)

        def run(interp, tid, thread, frame):
            value = fn(get_a(frame), get_b(frame))
            if dst is not None:
                frame.regs[dst] = value
            frame.index = next_index
        return run
    if a_kind == "reg" and b_kind == "reg":
        def run(interp, tid, thread, frame):
            regs = frame.regs
            try:
                va = regs[a]
            except KeyError:
                va = 0
            try:
                vb = regs[b]
            except KeyError:
                vb = 0
            regs[dst] = fn(va, vb)
            frame.index = next_index
    elif a_kind == "reg":
        def run(interp, tid, thread, frame):
            regs = frame.regs
            try:
                va = regs[a]
            except KeyError:
                va = 0
            regs[dst] = fn(va, b)
            frame.index = next_index
    elif b_kind == "reg":
        def run(interp, tid, thread, frame):
            regs = frame.regs
            try:
                vb = regs[b]
            except KeyError:
                vb = 0
            regs[dst] = fn(a, vb)
            frame.index = next_index
    else:
        value = fn(a, b)

        def run(interp, tid, thread, frame):
            frame.regs[dst] = value
            frame.index = next_index
    return run


def _compile_divmod(ins, a_spec, b_spec, next_index, is_div):
    dst = ins.dst.name if ins.dst is not None else None
    uid = ins.uid
    get_a, get_b = _getter(a_spec), _getter(b_spec)

    def run(interp, tid, thread, frame):
        a = get_a(frame)
        b = get_b(frame)
        if b == 0:
            interp._fail(FailureKind.DIV_BY_ZERO, tid, uid,
                         "division by zero")
        # C semantics: truncate toward zero.
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        value = q if is_div else a - q * b
        if dst is not None:
            frame.regs[dst] = value
        frame.index = next_index
    return run


def _compile_unop(ins, src_spec, next_index):
    fn = _UNOP_FNS.get(ins.op)
    if fn is None:
        op = ins.op
        return _raiser(lambda: RuntimeError(f"unknown unary operator {op!r}"))
    dst = ins.dst.name if ins.dst is not None else None
    get = _getter(src_spec)

    def run(interp, tid, thread, frame):
        value = fn(get(frame))
        if dst is not None:
            frame.regs[dst] = value
        frame.index = next_index
    return run


def _compile_load(ins, addr_spec, next_index):
    dst = ins.dst.name if ins.dst is not None else None
    uid = ins.uid
    addr_kind, addr_payload = addr_spec
    if addr_kind == "raise":
        return _raiser(addr_payload)
    addr_reg = addr_payload if addr_kind == "reg" else None
    const_addr = addr_payload if addr_kind == "const" else 0

    def run(interp, tid, thread, frame):
        regs = frame.regs
        if addr_reg is not None:
            try:
                addr = regs[addr_reg]
            except KeyError:
                addr = 0
        else:
            addr = const_addr
        memory = interp.memory
        # Fast path: a mapped global/string/stack slot cannot fault on a
        # read.  Heap reads always go through Memory.read — freed blocks
        # keep their slots, so a dict hit there would hide use-after-free.
        if GLOBAL_BASE <= addr < HEAP_BASE or addr >= STACK_BASE:
            value = memory._slots.get(addr)
            if value is None:
                value = memory.read(addr)
        else:
            value = memory.read(addr)
        if dst is not None:
            regs[dst] = value
        subs = interp._mem_subs
        if subs is not None:
            interp.extra_cost += subs[0]
            handlers = subs[1]
            if handlers:
                event = MemEvent(interp.global_step, tid, uid, addr,
                                 is_write=False, value=value)
                for fn in handlers:
                    fn(interp, event)
        frame.index = next_index
    return run


def _compile_store(ins, addr_spec, value_spec, next_index):
    uid = ins.uid
    get_addr, get_value = _getter(addr_spec), _getter(value_spec)

    def run(interp, tid, thread, frame):
        addr = get_addr(frame)
        value = get_value(frame)
        memory = interp.memory
        # Fast path mirrors Memory.write: mapped global/stack slots cannot
        # fault on a write.  Strings (read-only) and heap slots (liveness
        # checks) always go through Memory.write.
        if (GLOBAL_BASE <= addr < STRING_BASE or addr >= STACK_BASE) \
                and addr in memory._slots:
            memory._slots[addr] = value
        else:
            memory.write(addr, value)
        subs = interp._mem_subs
        if subs is not None:
            interp.extra_cost += subs[0]
            handlers = subs[1]
            if handlers:
                event = MemEvent(interp.global_step, tid, uid, addr,
                                 is_write=True, value=value)
                for fn in handlers:
                    fn(interp, event)
        frame.index = next_index
    return run


def _compile_alloca(ins, next_index):
    dst = ins.dst.name if ins.dst is not None else None
    size = ins.size

    def run(interp, tid, thread, frame):
        base = interp.memory.stack_alloc(tid, size)
        if dst is not None:
            frame.regs[dst] = base
        frame.index = next_index
    return run


def _compile_assert(ins, cond_spec, next_index):
    uid = ins.uid
    message = ins.text or "assertion failed"
    get_cond = _getter(cond_spec)

    def run(interp, tid, thread, frame):
        if get_cond(frame) == 0:
            interp._fail(FailureKind.ASSERTION, tid, uid, message)
        frame.index = next_index
    return run


def _compile_jmp(prog, ins, fname):
    uid = ins.uid
    label = ins.labels[0]
    target = prog.blocks.get((fname, label))
    if target is None:
        # Unknown label (unverified hand-built IR): fault at execution time
        # like the reference block lookup would.
        return _raiser(lambda: KeyError(label))

    def run(interp, tid, thread, frame):
        subs = interp._flow_subs
        if subs is not None:
            interp.extra_cost += subs[0]
            handlers = subs[1]
            if handlers:
                event = FlowEvent(interp.global_step, tid, uid,
                                  FlowKind.JUMP, target=label)
                for fn in handlers:
                    fn(interp, event)
        frame.block = label
        frame.index = 0
        frame.dcode = target
    return run


def _compile_br(prog, ins, cond_spec, fname):
    uid = ins.uid
    then_label, else_label = ins.labels[0], ins.labels[1]
    then_code = prog.blocks.get((fname, then_label))
    else_code = prog.blocks.get((fname, else_label))
    if then_code is None or else_code is None:
        missing = then_label if then_code is None else else_label
        return _raiser(lambda: KeyError(missing))
    cond_kind, cond_payload = cond_spec
    if cond_kind == "raise":
        return _raiser(cond_payload)
    cond_reg = cond_payload if cond_kind == "reg" else None
    const_taken = cond_kind == "const" and cond_payload != 0

    def run(interp, tid, thread, frame):
        if cond_reg is not None:
            try:
                taken = frame.regs[cond_reg] != 0
            except KeyError:
                taken = False
        else:
            taken = const_taken
        if taken:
            label, code = then_label, then_code
        else:
            label, code = else_label, else_code
        subs = interp._branch_subs
        if subs is not None:
            interp.extra_cost += subs[0]
            handlers = subs[1]
            if handlers:
                event = BranchEvent(interp.global_step, tid, uid,
                                    taken, label)
                for fn in handlers:
                    fn(interp, event)
        frame.block = label
        frame.index = 0
        frame.dcode = code
    return run


def _compile_ret(ins, value_spec, fname):
    uid = ins.uid
    get_value = _getter(value_spec) if value_spec is not None else None

    def run(interp, tid, thread, frame):
        value = get_value(frame) if get_value is not None else 0
        frames = thread.frames
        frames.pop()
        interp.memory.stack_release(tid, frame.stack_base)
        if not frames:
            # Thread exit: a PT-style tracer sees a return with no
            # resolvable target (target_pc = -1).
            interp._fire_flow(tid, uid, FlowKind.RET, fname, -1)
            interp._finish_thread(thread, value)
            return
        caller = frames[-1]
        return_dst = frame.return_dst
        if return_dst is not None:
            caller.regs[return_dst.name] = value
        caller.index += 1
        subs = interp._flow_subs
        if subs is not None:
            interp.extra_cost += subs[0]
            handlers = subs[1]
            if handlers:
                event = FlowEvent(interp.global_step, tid, uid,
                                  FlowKind.RET, target=fname,
                                  target_pc=interp._current_pc(thread))
                for fn in handlers:
                    fn(interp, event)
    return run


def _compile_call(prog, ins, global_bases, string_bases):
    uid = ins.uid

    def user_call():
        callee = ins.callee
        func = prog.module.functions[callee]
        params = tuple(func.params)
        entry_label = func.entry
        entry_code = prog.blocks.get((callee, entry_label))
        arg_getters = tuple(
            _getter(_operand_spec(o, global_bases, string_bases))
            for o in ins.operands)
        return_dst = ins.dst
        line = ins.line

        def run(interp, tid, thread, frame):
            args = [get(frame) for get in arg_getters]
            subs = interp._flow_subs
            if subs is not None:
                interp.extra_cost += subs[0]
                handlers = subs[1]
                if handlers:
                    event = FlowEvent(interp.global_step, tid, uid,
                                      FlowKind.CALL, target=callee)
                    for fn in handlers:
                        fn(interp, event)
            memory = interp.memory
            stack_base = memory._stack_tops.get(tid)
            if stack_base is None:
                stack_base = STACK_BASE + tid * STACK_STRIDE
            new_frame = Frame(function=callee, block=entry_label, index=0,
                              regs=dict(zip(params, args)),
                              return_dst=return_dst, stack_base=stack_base,
                              call_pc=uid, call_line=line)
            new_frame.dcode = entry_code
            thread.frames.append(new_frame)
        return run

    if ins.callee in prog.module.functions:
        return user_call()

    # Builtins: delegate to the interpreter's (mode-shared) implementation,
    # which advances frame.index itself and handles blocking re-execution.
    def run(interp, tid, thread, frame):
        interp._do_builtin(tid, thread, ins)
    return run


# ---------------------------------------------------------------------------
# The per-module cache
# ---------------------------------------------------------------------------

_CACHE: "WeakKeyDictionary[Module, DecodedProgram]" = WeakKeyDictionary()


def decoded_program(module: Module) -> DecodedProgram:
    """The (cached) decoded stream for ``module``.

    Keyed by module identity; a bumped ``analysis_epoch`` (re-finalize)
    invalidates the entry.  Every interpreter of the same module object
    shares one decode, which is what makes thousand-run fleet campaigns
    pay the decode cost once.
    """
    program = _CACHE.get(module)
    if program is None or program.epoch != module.analysis_epoch:
        program = DecodedProgram(module)
        _CACHE[module] = program
    return program
