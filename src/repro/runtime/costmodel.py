"""Deterministic cycle-cost accounting.

The paper reports client-side *performance overhead percentages* (Figs. 11
and 13, §5.3).  Our substrate is an interpreter, so wall-clock time would
measure Python, not the workload.  Instead each run is charged model cycles:
a base cost per retired instruction, plus per-event costs contributed by
whatever tracing is attached (PT packet writes, watchpoint traps,
instrumentation calls, record/replay logging).  Overhead is then

    (instrumented_cost - base_cost) / base_cost

which is reproducible bit-for-bit and preserves the *shape* of the paper's
numbers: costs scale with the density of the events each mechanism consumes.

The constants are calibrated against the figures the paper reports:
full Intel PT tracing ≈ 11% average overhead, hardware watchpoint data-flow
tracking ≈ 1%, software control-flow tracing 3×–5000×, and full
record/replay ≈ 10× (984%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..lang.ir import Opcode

#: Base retired-instruction costs, in model cycles.
OPCODE_COST: Dict[Opcode, int] = {
    Opcode.CONST: 1,
    Opcode.MOVE: 1,
    Opcode.BINOP: 1,
    Opcode.UNOP: 1,
    Opcode.GEP: 1,
    Opcode.LOAD: 4,
    Opcode.STORE: 4,
    Opcode.ALLOCA: 2,
    Opcode.CALL: 6,
    Opcode.RET: 4,
    Opcode.BR: 2,
    Opcode.JMP: 1,
    Opcode.ASSERT: 2,
}

#: Cost of writing one byte of an Intel PT packet to the trace buffer.
#: PT emits ~0.5 bits/instruction; with ~2 cycles/instr base cost this
#: lands full-tracing overhead near the paper's 11% average.
PT_BYTE_COST = 3

#: Cost of taking one hardware-watchpoint debug trap (handler + resume).
#: Debug exceptions are handled atomically but in a tight kernel path; the
#: value is calibrated so that data-flow tracking's share of overhead sits
#: near the paper's ~1% on corpus-sized workloads.
WATCHPOINT_TRAP_COST = 50

#: Cost of one instrumentation call that toggles PT via the driver's ioctl.
IOCTL_TOGGLE_COST = 40

#: Cost of placing / removing a hardware watchpoint through ptrace.
PTRACE_WATCHPOINT_COST = 500

#: Per-branch cost of *software* control-flow tracing (the paper's PIN-based
#: Intel PT simulator saw 3x-5000x slowdowns).
SOFTWARE_BRANCH_TRACE_COST = 180

#: Record/replay: per-instruction and per-memory-access logging costs.
RR_STEP_COST = 14
RR_MEM_COST = 40


@dataclass
class CostModel:
    """Accumulates base cost and per-opcode counts for one run."""

    base_cost: int = 0
    counts: Dict[str, int] = field(default_factory=dict)

    def charge(self, opcode: Opcode) -> None:
        # Keyed by the opcode's value string: its hash is cached in the
        # interned str, unlike Enum.__hash__ which rehashes the name on
        # every lookup (this is the interpreter's hottest line).
        # NOTE: the interpreter's hot path inlines this method against the
        # pre-decoded (cost, key) pair — ``base_cost += record[1]`` plus a
        # try/except counter bump — so any semantic change here must be
        # mirrored in Interpreter._loop/_loop_profiled.
        self.base_cost += OPCODE_COST[opcode]
        key = opcode.value
        counts = self.counts
        counts[key] = counts.get(key, 0) + 1

    def instructions_retired(self) -> int:
        return sum(self.counts.values())


def overhead_percent(base_cost: int, extra_cost: int) -> float:
    """Overhead as a percentage of the uninstrumented run."""
    if base_cost <= 0:
        return 0.0
    return 100.0 * extra_cost / base_cost
