"""Thread and stack-frame state for the GIR interpreter."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..lang.ir import Register


class ThreadStatus(enum.Enum):
    """Lifecycle/blocking states of a simulated thread."""
    RUNNABLE = "runnable"
    BLOCKED_LOCK = "blocked_lock"
    BLOCKED_JOIN = "blocked_join"
    BLOCKED_COND = "blocked_cond"
    SLEEPING = "sleeping"
    FINISHED = "finished"


@dataclass
class Frame:
    """One activation record."""

    function: str
    block: str
    index: int                       # next instruction index within block
    regs: Dict[str, int] = field(default_factory=dict)
    return_dst: Optional[Register] = None   # caller register for our result
    stack_base: int = 0              # memory watermark for frame teardown
    call_pc: int = -1                # uid of the CALL that created this frame
    call_line: int = 0
    #: Cached instruction list of the current block (perf: avoids two dict
    #: lookups per step).  Invalidated (set to None) on every jump.
    code: Optional[list] = None
    #: Cached pre-decoded step records of the current block (hot-path
    #: dispatch; see :mod:`repro.runtime.decoded`).  Jump/branch closures
    #: swap it directly to the pre-linked target block's records.
    dcode: Optional[list] = None

    def get(self, name: str) -> int:
        try:
            return self.regs[name]
        except KeyError:
            # Registers are written before read in well-formed codegen
            # output; reading an unwritten register means hand-built IR.
            # Match hardware: an uninitialized register holds garbage, but
            # deterministic garbage (zero) keeps runs reproducible.
            return 0

    def set(self, name: str, value: int) -> None:
        self.regs[name] = value


@dataclass
class Thread:
    """A simulated thread: a stack of frames plus scheduling state."""

    tid: int
    frames: List[Frame] = field(default_factory=list)
    status: ThreadStatus = ThreadStatus.RUNNABLE
    waiting_on_lock: int = 0         # mutex address when BLOCKED_LOCK
    waiting_on_tid: int = -1         # target when BLOCKED_JOIN
    waiting_on_cond: int = 0         # condvar address when BLOCKED_COND
    #: condvar wait protocol state: "" (not waiting) | "signaled"
    #: (woken, must reacquire the mutex before returning from cond_wait).
    cond_state: str = ""
    wake_at_step: int = 0            # when SLEEPING
    start_routine: str = ""
    exit_value: int = 0

    @property
    def top(self) -> Frame:
        return self.frames[-1]

    def is_runnable(self, now_step: int) -> bool:
        if self.status is ThreadStatus.RUNNABLE:
            return True
        if self.status is ThreadStatus.SLEEPING:
            return now_step >= self.wake_at_step
        return False

    def stack_functions(self) -> List[str]:
        return [frame.function for frame in self.frames]
