"""The GIR interpreter: our stand-in for production x86 execution.

One :class:`Interpreter` instance is one program execution.  It runs a
finalized GIR module under a pluggable :class:`~repro.runtime.scheduler.
Scheduler`, emits events to attached :class:`~repro.runtime.events.Tracer`
objects, fires per-pc instrumentation hooks (how Gist's client-side patches
run), charges model cycles to a :class:`~repro.runtime.costmodel.CostModel`,
and converts memory faults / failed assertions / deadlocks into
:class:`~repro.runtime.failures.FailureReport` objects — the raw material of
failure sketching.

Two dispatch modes execute the same semantics:

- The **hot path** (default) steps through pre-decoded closure streams
  (:mod:`repro.runtime.decoded`) and consults per-event-kind *subscriber
  lists* computed at run start, so a tracer that does not implement
  ``on_mem`` is never consulted for memory events and no event object is
  allocated when an event kind has no subscribers at all.
- The **strict path** (``strict_dispatch=True``, or process-wide via the
  ``REPRO_STRICT_DISPATCH`` environment variable) is the original
  fetch/decode/execute interpreter with unconditional tracer fan-out, kept
  as the executable reference that the A/B equivalence suite pins the hot
  path against.

Both modes call :meth:`Scheduler.pick` once per retired instruction — a
load-bearing invariant: seeded schedulers consume RNG state per pick, so
skipping picks (e.g. when only one thread is runnable) would change every
downstream interleaving.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..lang.ir import (
    ConstInt,
    FuncRef,
    GlobalRef,
    Instr,
    Module,
    NullPtr,
    Opcode,
    Operand,
    Register,
    StrConst,
)
from .compiled import CompileError, compiled_program
from .costmodel import CostModel
from .decoded import decoded_program
from .events import (
    BranchEvent,
    FlowEvent,
    FlowKind,
    MemEvent,
    SyncEvent,
    Tracer,
    subscribes,
)
from .failures import (
    FailureKind,
    FailureReport,
    RunOutcome,
    StackFrameInfo,
)
from .memory import STACK_BASE, STACK_STRIDE, Memory, MemoryFault
from .scheduler import RoundRobinScheduler, Scheduler
from .sync import CondTable, MutexTable
from .threads import Frame, Thread, ThreadStatus

#: An instrumentation hook: fires immediately before its instruction
#: executes.  ``cost`` is charged to extra_cost on each firing.
Hook = Tuple[Callable[["Interpreter", int, Instr], None], int]

ArgValue = Union[int, str]

#: Process-wide default dispatch mode.  ``True`` routes every run that does
#: not pass an explicit ``strict_dispatch=`` through the reference
#: interpreter — the lever the A/B equivalence tests and the
#: ``REPRO_STRICT_DISPATCH=1`` environment knob use to compare whole
#: campaigns across modes without threading a flag through every call site.
STRICT_DISPATCH_DEFAULT = \
    os.environ.get("REPRO_STRICT_DISPATCH", "") not in ("", "0")

#: Process-wide default execution tier for runs that pass neither ``mode=``
#: nor ``strict_dispatch=``: "compiled" (GIR compiled to Python source,
#: uninstrumented runs only), "decoded" (pre-decoded closure streams), or
#: "strict" (the reference interpreter).  Overridable via the
#: ``REPRO_INTERP_MODE`` environment variable and the CLI ``--interp`` flag.
INTERP_MODE_DEFAULT = os.environ.get("REPRO_INTERP_MODE", "") or "compiled"

_VALID_MODES = ("compiled", "decoded", "strict")


class _ProgramExit(Exception):
    def __init__(self, code: int) -> None:
        self.code = code


class _ProgramFailure(Exception):
    def __init__(self, report: FailureReport) -> None:
        self.report = report


class Interpreter:
    """Executes one run of a GIR module.

    Args:
        module: a finalized GIR module.
        entry: entry function, usually ``"main"``.
        args: positional arguments for the entry function.  Strings are
            mapped into read-only memory and passed as pointers.
        scheduler: thread scheduler (default: round-robin).
        tracers: observers receiving execution events.  The set (and each
            tracer's overridden callbacks) must be fixed before
            :meth:`run`; subscriber lists are computed at run start.
        hooks: per-pc instrumentation, ``{uid: [(callable, cost), ...]}``.
        max_steps: global retired-instruction budget; exceeding it reports a
            HANG failure (the paper treats hangs as failures Gist
            understands, §3.3).
        strict_dispatch: force the reference (pre-decode-free, unconditional
            fan-out) execution path; ``None`` defers to
            :data:`STRICT_DISPATCH_DEFAULT`.
        profile: collect a per-phase wall-clock breakdown of the hot loop
            (schedule/fetch/trace/dispatch) into :attr:`profile_data`.
    """

    def __init__(
        self,
        module: Module,
        entry: str = "main",
        args: Sequence[ArgValue] = (),
        scheduler: Optional[Scheduler] = None,
        tracers: Sequence[Tracer] = (),
        hooks: Optional[Dict[int, List[Hook]]] = None,
        max_steps: int = 500_000,
        strict_dispatch: Optional[bool] = None,
        profile: bool = False,
        mode: Optional[str] = None,
    ) -> None:
        if not module.finalized:
            raise ValueError("module must be finalized")
        if entry not in module.functions:
            raise ValueError(f"no entry function {entry!r}")
        self.module = module
        self.entry = entry
        self.scheduler = scheduler or RoundRobinScheduler()
        self.tracers: List[Tracer] = list(tracers)
        self.hooks: Dict[int, List[Hook]] = hooks or {}
        self.max_steps = max_steps
        self.mode = self._resolve_mode(mode, strict_dispatch)
        self.strict_dispatch = (self.mode == "strict")
        self.profile = profile
        #: Filled by a profiled run: {"steps", "wall_s", "phases": {...}}.
        self.profile_data: Optional[Dict[str, object]] = None

        self.memory = Memory()
        self.mutexes = MutexTable()
        self.conds = CondTable()
        self.cost = CostModel()
        self.extra_cost = 0
        self.global_step = 0
        self.stdout: List[str] = []
        self.threads: Dict[int, Thread] = {}
        self._next_tid = 1
        self._string_bases: List[int] = []
        self._exit_code = 0
        self._current_tid: Optional[int] = None
        # Scheduler cache: the runnable set only changes on thread state
        # transitions (and while any thread sleeps); recomputing it per
        # retired instruction dominated profiles otherwise.
        self._sched_dirty = True
        self._runnable_cache: List[int] = []
        # Per-event-kind subscriber lists: None (nobody pays, nobody
        # listens) or (total static cost, [bound handlers]).  Computed
        # here and again at run start (events fired before run() — e.g.
        # from tests poking _do_builtin directly — still dispatch).
        self._decoded = None if self.strict_dispatch \
            else decoded_program(module)
        self._compiled = None
        if self.mode == "compiled":
            try:
                self._compiled = compiled_program(module)
            except CompileError:
                # Unsupported construct: fall back to the decoded tier for
                # this module (semantics are identical; only speed differs).
                self.mode = "decoded"
        self._compute_dispatch()

        self._map_globals()
        self._map_strings()
        self._spawn_entry(list(args))

    @staticmethod
    def _resolve_mode(mode: Optional[str],
                      strict_dispatch: Optional[bool]) -> str:
        """Resolve the execution tier from the explicit ``mode``, the legacy
        ``strict_dispatch`` flag, and the process-wide defaults.

        Precedence: explicit ``mode`` > explicit ``strict_dispatch`` >
        :data:`STRICT_DISPATCH_DEFAULT` > :data:`INTERP_MODE_DEFAULT`.  An
        explicit ``strict_dispatch=False`` means "any non-strict tier": it
        resolves to the process default unless that default is itself
        "strict", in which case it falls to "decoded".
        """
        if mode is None and strict_dispatch is not None:
            if strict_dispatch:
                mode = "strict"
            else:
                mode = INTERP_MODE_DEFAULT
                if mode == "strict":
                    mode = "decoded"
        if mode is None:
            mode = "strict" if STRICT_DISPATCH_DEFAULT else INTERP_MODE_DEFAULT
        if mode not in _VALID_MODES:
            raise ValueError(
                f"unknown interpreter mode {mode!r}; "
                f"expected one of {_VALID_MODES}")
        return mode

    # ------------------------------------------------------------------ setup

    def _map_globals(self) -> None:
        for gvar in self.module.globals.values():
            self.memory.map_global(gvar.name, gvar.size, tuple(gvar.init))

    def _map_strings(self) -> None:
        for value in self.module.strings:
            self._string_bases.append(self.memory.map_string(value))

    def _spawn_entry(self, args: List[ArgValue]) -> None:
        func = self.module.functions[self.entry]
        values: List[int] = []
        for arg in args:
            if isinstance(arg, str):
                values.append(self.memory.map_string(arg))
            else:
                values.append(int(arg))
        regs = dict(zip(func.params, values))
        thread = Thread(tid=0, start_routine=self.entry)
        thread.frames.append(Frame(function=func.name, block=func.entry,
                                   index=0, regs=regs,
                                   stack_base=self._stack_top(0)))
        self.threads[0] = thread

    def _stack_top(self, tid: int) -> int:
        return self.memory._stack_tops.get(
            tid, STACK_BASE + tid * STACK_STRIDE)

    # ------------------------------------------------------------------ events

    def _compute_dispatch(self) -> None:
        """Build the per-event-kind subscriber lists.

        A tracer is a subscriber of an event kind when it overrides the
        kind's callback (or declares a ``wants_on_*`` veto — see
        :func:`repro.runtime.events.subscribes`).  Its *static cost*
        contribution is owed regardless: attaching a tracer with
        ``cost_per_branch = 5`` models deployed instrumentation whose
        price does not depend on whether our simulation inspects the
        event.  Strict mode subscribes every tracer to everything,
        reproducing the reference fan-out bit for bit.
        """
        tracers = self.tracers
        strict = self.strict_dispatch

        def build(cost_attr, name):
            total = 0
            handlers = []
            for tracer in tracers:
                if cost_attr is not None:
                    total += getattr(tracer, cost_attr)
                if strict or subscribes(tracer, name):
                    handlers.append(getattr(tracer, name))
            if total == 0 and not handlers:
                return None
            return (total, handlers)

        self._branch_subs = build("cost_per_branch", "on_branch")
        self._flow_subs = build("cost_per_flow", "on_flow")
        self._mem_subs = build("cost_per_mem", "on_mem")
        self._sync_subs = build(None, "on_sync")
        self._step_subs = build("cost_per_step", "on_step")

    def _fire_branch(self, tid: int, pc: int, taken: bool,
                     target_label: str) -> None:
        subs = self._branch_subs
        if subs is None:
            return
        self.extra_cost += subs[0]
        handlers = subs[1]
        if handlers:
            event = BranchEvent(self.global_step, tid, pc, taken,
                                target_label)
            for fn in handlers:
                fn(self, event)

    def _fire_flow(self, tid: int, pc: int, kind: FlowKind,
                   target: str = "", target_pc: int = -1) -> None:
        subs = self._flow_subs
        if subs is None:
            return
        self.extra_cost += subs[0]
        handlers = subs[1]
        if handlers:
            event = FlowEvent(self.global_step, tid, pc, kind,
                              target=target, target_pc=target_pc)
            for fn in handlers:
                fn(self, event)

    def _fire_mem(self, tid: int, pc: int, address: int, is_write: bool,
                  value: int) -> None:
        subs = self._mem_subs
        if subs is None:
            return
        self.extra_cost += subs[0]
        handlers = subs[1]
        if handlers:
            event = MemEvent(self.global_step, tid, pc, address,
                             is_write=is_write, value=value)
            for fn in handlers:
                fn(self, event)

    def _fire_sync(self, tid: int, pc: int, op: str,
                   object_address: int = 0, other_tid: int = -1) -> None:
        subs = self._sync_subs
        if subs is None:
            return
        handlers = subs[1]
        if handlers:
            event = SyncEvent(self.global_step, tid, pc, op,
                              object_address=object_address,
                              other_tid=other_tid)
            for fn in handlers:
                fn(self, event)

    # ------------------------------------------------------------------ values

    def eval_operand(self, tid: int, operand: Operand) -> int:
        """Evaluate an operand in the context of a thread's top frame."""
        if isinstance(operand, Register):
            return self.threads[tid].top.get(operand.name)
        if isinstance(operand, ConstInt):
            return operand.value
        if isinstance(operand, GlobalRef):
            return self.memory.global_base(operand.name)
        if isinstance(operand, StrConst):
            return self._string_bases[operand.index]
        if isinstance(operand, NullPtr):
            return 0
        if isinstance(operand, FuncRef):
            raise RuntimeError("FuncRef has no runtime value")
        raise RuntimeError(f"unknown operand {operand!r}")

    def _set(self, tid: int, dst: Optional[Register], value: int) -> None:
        if dst is not None:
            self.threads[tid].top.set(dst.name, value)

    # ------------------------------------------------------------------ failure

    def stack_trace(self, tid: int, fault_pc: int) -> Tuple[StackFrameInfo, ...]:
        thread = self.threads[tid]
        frames: List[StackFrameInfo] = []
        for i, frame in enumerate(thread.frames):
            if i == len(thread.frames) - 1:
                pc = fault_pc
                line = self.module.instr(fault_pc).line if fault_pc >= 0 else 0
            else:
                pc = thread.frames[i + 1].call_pc
                line = thread.frames[i + 1].call_line
            frames.append(StackFrameInfo(frame.function, pc, line))
        return tuple(reversed(frames))

    def _fail(self, kind: FailureKind, tid: int, pc: int, message: str = "",
              address: Optional[int] = None) -> None:
        report = FailureReport(kind=kind, pc=pc, tid=tid, message=message,
                               stack=self.stack_trace(tid, pc),
                               address=address)
        raise _ProgramFailure(report)

    # ------------------------------------------------------------------ run loop

    def run(self) -> RunOutcome:
        failure: Optional[FailureReport] = None
        self._compute_dispatch()
        for tracer in self.tracers:
            tracer.on_start(self)
        try:
            if self.strict_dispatch:
                self._loop_strict()
            elif self.profile:
                self._loop_profiled()
            elif (self._compiled is not None and not self.tracers
                    and not self.hooks):
                # The compiled tier runs only fully uninstrumented
                # executions; any tracer or hook is a trace point, and the
                # run falls back to the decoded tier so instrumentation
                # semantics stay byte-identical (DESIGN.md §3.5).
                self._loop_compiled()
            else:
                self._loop()
        except _ProgramExit as exit_:
            self._exit_code = exit_.code
        except _ProgramFailure as failed:
            failure = failed.report
        for tracer in self.tracers:
            tracer.on_finish(self)
        for tracer in self.tracers:
            self.extra_cost += tracer.dynamic_extra_cost()
        return RunOutcome(
            failed=failure is not None,
            failure=failure,
            exit_value=self._exit_code,
            steps=self.global_step,
            base_cost=self.cost.base_cost,
            extra_cost=self.extra_cost,
            stdout=list(self.stdout),
        )

    def _runnable_tids(self) -> List[int]:
        if not self._sched_dirty:
            return self._runnable_cache
        runnable: List[int] = []
        sleeping = False
        now = self.global_step
        for t in self.threads.values():
            status = t.status
            if status is ThreadStatus.RUNNABLE:
                runnable.append(t.tid)
            elif status is ThreadStatus.SLEEPING:
                if now >= t.wake_at_step:
                    t.status = ThreadStatus.RUNNABLE
                    runnable.append(t.tid)
                else:
                    sleeping = True
        self._runnable_cache = runnable
        self._sched_dirty = sleeping  # stay dirty while timers are pending
        return runnable

    def _loop(self) -> None:
        """The hot path: one closure call per retired instruction.

        Everything loop-invariant is bound to locals; per-step work is
        scheduler pick → list index → inline cost/count update →
        (subscriber-gated) step fan-out → hook probe → closure dispatch.
        Observable behaviour is pinned to :meth:`_loop_strict` by the A/B
        equivalence suite.
        """
        threads = self.threads
        pick = self.scheduler.pick
        hooks = self.hooks
        has_hooks = bool(hooks)
        max_steps = self.max_steps
        cost = self.cost
        counts = cost.counts
        blocks = self._decoded.blocks
        step_subs = self._step_subs
        while True:
            runnable = self._runnable_tids()
            if not runnable:
                statuses = {t.status for t in threads.values()}
                if statuses <= {ThreadStatus.FINISHED}:
                    return  # clean exit: all threads done
                if ThreadStatus.SLEEPING in statuses:
                    self._advance_past_sleep()
                    continue
                self._report_deadlock()
            tid = pick(runnable, self._current_tid, self.global_step)
            if tid not in runnable:  # defensive: scheduler bug
                tid = runnable[0]
            self._current_tid = tid
            thread = threads[tid]
            frame = thread.frames[-1]
            dcode = frame.dcode
            if dcode is None:
                frame.dcode = dcode = blocks[(frame.function, frame.block)]
            record = dcode[frame.index]
            self.global_step = step = self.global_step + 1
            cost.base_cost += record[1]
            opkey = record[2]
            try:
                counts[opkey] += 1
            except KeyError:
                counts[opkey] = 1
            if step_subs is not None:
                self.extra_cost += step_subs[0]
                handlers = step_subs[1]
                if handlers:
                    ins = record[3]
                    for fn in handlers:
                        fn(self, tid, ins)
            if has_hooks:
                hook_list = hooks.get(record[3].uid)
                if hook_list:
                    ins = record[3]
                    for hook, hook_cost in hook_list:
                        self.extra_cost += hook_cost
                        hook(self, tid, ins)
            try:
                record[0](self, tid, thread, frame)
            except MemoryFault as fault:
                self._fail(fault.kind, tid, record[3].uid, fault.detail,
                           fault.address)
            if step > max_steps:
                thread = threads[tid]
                pc = self._current_pc(thread)
                self._fail(FailureKind.HANG, tid, pc,
                           f"exceeded {max_steps} steps")

    def _loop_compiled(self) -> None:
        """The compiled tier: each thread runs as an exec-compiled Python
        generator (:mod:`repro.runtime.compiled`) with the scheduler gate,
        cost accounting, and hang check inlined into the generated source.

        The protocol: a generator yields a *tid* when its inlined gate has
        already spent a scheduler pick choosing that thread (the loop
        resumes it directly), or ``None`` when no pick was spent (blocked /
        sleeping: the loop runs a full runnable/pick cycle).  Every resume
        therefore corresponds to exactly one spent pick, preserving the
        one-pick-per-retired-instruction contract.
        """
        threads = self.threads
        program = self._compiled
        gens: Dict[int, object] = {}
        pending: Optional[int] = None
        while True:
            if pending is None:
                runnable = self._runnable_tids()
                if not runnable:
                    statuses = {t.status for t in threads.values()}
                    if statuses <= {ThreadStatus.FINISHED}:
                        return  # clean exit: all threads done
                    if ThreadStatus.SLEEPING in statuses:
                        self._advance_past_sleep()
                        continue
                    self._report_deadlock()
                tid = self.scheduler.pick(runnable, self._current_tid,
                                          self.global_step)
                if tid not in runnable:  # defensive: scheduler bug
                    tid = runnable[0]
            else:
                tid, pending = pending, None
            self._current_tid = tid
            gen = gens.get(tid)
            if gen is None:
                gens[tid] = gen = program.thread_gen(self, tid)
            try:
                pending = gen.send(None)
            except StopIteration:
                gens.pop(tid, None)
                pending = None

    def _loop_profiled(self) -> None:
        """The hot path with per-phase wall-clock accounting (opt-in via
        ``--profile-run``; the timers roughly double per-step overhead, so
        this is never the default)."""
        threads = self.threads
        pick = self.scheduler.pick
        hooks = self.hooks
        has_hooks = bool(hooks)
        max_steps = self.max_steps
        cost = self.cost
        counts = cost.counts
        blocks = self._decoded.blocks
        step_subs = self._step_subs
        phases = {"schedule": 0.0, "fetch": 0.0, "trace": 0.0,
                  "dispatch": 0.0}
        started = perf_counter()
        try:
            while True:
                t0 = perf_counter()
                runnable = self._runnable_tids()
                if not runnable:
                    statuses = {t.status for t in threads.values()}
                    if statuses <= {ThreadStatus.FINISHED}:
                        return
                    if ThreadStatus.SLEEPING in statuses:
                        self._advance_past_sleep()
                        continue
                    self._report_deadlock()
                tid = pick(runnable, self._current_tid, self.global_step)
                if tid not in runnable:
                    tid = runnable[0]
                self._current_tid = tid
                t1 = perf_counter()
                phases["schedule"] += t1 - t0
                thread = threads[tid]
                frame = thread.frames[-1]
                dcode = frame.dcode
                if dcode is None:
                    frame.dcode = dcode = \
                        blocks[(frame.function, frame.block)]
                record = dcode[frame.index]
                self.global_step = step = self.global_step + 1
                cost.base_cost += record[1]
                opkey = record[2]
                try:
                    counts[opkey] += 1
                except KeyError:
                    counts[opkey] = 1
                t2 = perf_counter()
                phases["fetch"] += t2 - t1
                if step_subs is not None:
                    self.extra_cost += step_subs[0]
                    handlers = step_subs[1]
                    if handlers:
                        ins = record[3]
                        for fn in handlers:
                            fn(self, tid, ins)
                if has_hooks:
                    hook_list = hooks.get(record[3].uid)
                    if hook_list:
                        ins = record[3]
                        for hook, hook_cost in hook_list:
                            self.extra_cost += hook_cost
                            hook(self, tid, ins)
                t3 = perf_counter()
                phases["trace"] += t3 - t2
                try:
                    record[0](self, tid, thread, frame)
                except MemoryFault as fault:
                    self._fail(fault.kind, tid, record[3].uid,
                               fault.detail, fault.address)
                finally:
                    phases["dispatch"] += perf_counter() - t3
                if step > max_steps:
                    thread = threads[tid]
                    pc = self._current_pc(thread)
                    self._fail(FailureKind.HANG, tid, pc,
                               f"exceeded {max_steps} steps")
        finally:
            self.profile_data = {
                "steps": self.global_step,
                "wall_s": perf_counter() - started,
                "phases": phases,
            }

    def _loop_strict(self) -> None:
        """The reference loop: per-step fetch/decode through the module's
        IR objects (the pre-overhaul interpreter, preserved verbatim)."""
        while True:
            runnable = self._runnable_tids()
            if not runnable:
                statuses = {t.status for t in self.threads.values()}
                if statuses <= {ThreadStatus.FINISHED}:
                    return  # clean exit: all threads done
                if ThreadStatus.SLEEPING in statuses:
                    self._advance_past_sleep()
                    continue
                self._report_deadlock()
            tid = self.scheduler.pick(runnable, self._current_tid,
                                      self.global_step)
            if tid not in runnable:  # defensive: scheduler bug
                tid = runnable[0]
            self._current_tid = tid
            self._step(tid)
            if self.global_step > self.max_steps:
                thread = self.threads[tid]
                pc = self._current_pc(thread)
                self._fail(FailureKind.HANG, tid, pc,
                           f"exceeded {self.max_steps} steps")

    def _advance_past_sleep(self) -> None:
        wake = min(t.wake_at_step for t in self.threads.values()
                   if t.status is ThreadStatus.SLEEPING)
        self.global_step = max(self.global_step, wake)
        self._sched_dirty = True
        for t in self.threads.values():
            if t.status is ThreadStatus.SLEEPING and \
                    t.wake_at_step <= self.global_step:
                t.status = ThreadStatus.RUNNABLE

    def _report_deadlock(self) -> None:
        blocked = [t for t in self.threads.values()
                   if t.status in (ThreadStatus.BLOCKED_LOCK,
                                   ThreadStatus.BLOCKED_JOIN,
                                   ThreadStatus.BLOCKED_COND)]
        victim = blocked[0] if blocked else None
        if victim is None:  # pragma: no cover - cannot happen
            raise _ProgramExit(0)
        pc = self._current_pc(victim)
        waiting = ", ".join(
            f"T{t.tid}:{t.status.value}" for t in blocked)
        self._fail(FailureKind.DEADLOCK, victim.tid, pc,
                   f"no runnable threads ({waiting})")

    def _current_pc(self, thread: Thread) -> int:
        if not thread.frames:
            return -1
        frame = thread.top
        bb = self.module.functions[frame.function].blocks[frame.block]
        idx = min(frame.index, len(bb.instrs) - 1)
        return bb.instrs[idx].uid

    # ------------------------------------------------------------------ stepping

    def _fetch(self, thread: Thread) -> Instr:
        frame = thread.top
        code = frame.code
        if code is None:
            code = self.module.functions[frame.function] \
                .blocks[frame.block].instrs
            frame.code = code
        return code[frame.index]

    def _step(self, tid: int) -> None:
        thread = self.threads[tid]
        ins = self._fetch(thread)
        self.global_step += 1
        self.cost.charge(ins.opcode)
        for tracer in self.tracers:
            self.extra_cost += tracer.cost_per_step
            tracer.on_step(self, tid, ins)
        for hook, hook_cost in self.hooks.get(ins.uid, ()):  # instrumentation
            self.extra_cost += hook_cost
            hook(self, tid, ins)
        try:
            self._execute(tid, thread, ins)
        except MemoryFault as fault:
            self._fail(fault.kind, tid, ins.uid, fault.detail, fault.address)

    def _execute(self, tid: int, thread: Thread, ins: Instr) -> None:
        op = ins.opcode
        frame = thread.top
        if op in (Opcode.CONST, Opcode.MOVE):
            self._set(tid, ins.dst, self.eval_operand(tid, ins.operands[0]))
        elif op == Opcode.BINOP:
            a = self.eval_operand(tid, ins.operands[0])
            b = self.eval_operand(tid, ins.operands[1])
            self._set(tid, ins.dst, self._binop(tid, ins, a, b))
        elif op == Opcode.UNOP:
            a = self.eval_operand(tid, ins.operands[0])
            self._set(tid, ins.dst, self._unop(ins.op, a))
        elif op == Opcode.LOAD:
            addr = self.eval_operand(tid, ins.operands[0])
            value = self.memory.read(addr)
            self._set(tid, ins.dst, value)
            self._fire_mem(tid, ins.uid, addr, is_write=False, value=value)
        elif op == Opcode.STORE:
            addr = self.eval_operand(tid, ins.operands[0])
            value = self.eval_operand(tid, ins.operands[1])
            self.memory.write(addr, value)
            self._fire_mem(tid, ins.uid, addr, is_write=True, value=value)
        elif op == Opcode.ALLOCA:
            self._set(tid, ins.dst, self.memory.stack_alloc(tid, ins.size))
        elif op == Opcode.GEP:
            base = self.eval_operand(tid, ins.operands[0])
            offset = self.eval_operand(tid, ins.operands[1])
            self._set(tid, ins.dst, base + offset)
        elif op == Opcode.ASSERT:
            cond = self.eval_operand(tid, ins.operands[0])
            if cond == 0:
                self._fail(FailureKind.ASSERTION, tid, ins.uid,
                           ins.text or "assertion failed")
        elif op == Opcode.JMP:
            self._fire_flow(tid, ins.uid, FlowKind.JUMP,
                            target=ins.labels[0])
            frame.block = ins.labels[0]
            frame.index = 0
            frame.code = None
            return
        elif op == Opcode.BR:
            cond = self.eval_operand(tid, ins.operands[0])
            taken = cond != 0
            target = ins.labels[0] if taken else ins.labels[1]
            self._fire_branch(tid, ins.uid, taken, target)
            frame.block = target
            frame.index = 0
            frame.code = None
            return
        elif op == Opcode.RET:
            self._do_ret(tid, thread, ins)
            return
        elif op == Opcode.CALL:
            advanced = self._do_call(tid, thread, ins)
            if advanced:
                return
        else:  # pragma: no cover
            raise RuntimeError(f"unknown opcode {op}")
        frame.index += 1

    # ------------------------------------------------------------------ arithmetic

    def _binop(self, tid: int, ins: Instr, a: int, b: int) -> int:
        op = ins.op
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op in ("/", "%"):
            if b == 0:
                self._fail(FailureKind.DIV_BY_ZERO, tid, ins.uid,
                           "division by zero")
            # C semantics: truncate toward zero.
            q = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                q = -q
            if op == "/":
                return q
            return a - q * b
        if op == "==":
            return int(a == b)
        if op == "!=":
            return int(a != b)
        if op == "<":
            return int(a < b)
        if op == "<=":
            return int(a <= b)
        if op == ">":
            return int(a > b)
        if op == ">=":
            return int(a >= b)
        if op == "&":
            return a & b
        if op == "|":
            return a | b
        if op == "^":
            return a ^ b
        if op == "<<":
            return a << (b & 63)
        if op == ">>":
            return a >> (b & 63)
        raise RuntimeError(f"unknown binary operator {op!r}")

    @staticmethod
    def _unop(op: str, a: int) -> int:
        if op == "-":
            return -a
        if op == "!":
            return int(a == 0)
        if op == "~":
            return ~a
        raise RuntimeError(f"unknown unary operator {op!r}")

    # ------------------------------------------------------------------ calls

    def _do_ret(self, tid: int, thread: Thread, ins: Instr) -> None:
        value = (self.eval_operand(tid, ins.operands[0])
                 if ins.operands else 0)
        frame = thread.frames.pop()
        self.memory.stack_release(tid, frame.stack_base)
        if not thread.frames:
            # Thread exit: an Intel-PT-style tracer sees a return with no
            # resolvable target (target_pc = -1).
            self._fire_flow(tid, ins.uid, FlowKind.RET,
                            target=frame.function, target_pc=-1)
            self._finish_thread(thread, value)
            return
        caller = thread.top
        if frame.return_dst is not None:
            caller.set(frame.return_dst.name, value)
        caller.index += 1
        self._fire_flow(tid, ins.uid, FlowKind.RET, target=frame.function,
                        target_pc=self._current_pc(thread))

    def _finish_thread(self, thread: Thread, value: int) -> None:
        self._sched_dirty = True
        thread.status = ThreadStatus.FINISHED
        thread.exit_value = value
        for other in self.threads.values():
            if other.status is ThreadStatus.BLOCKED_JOIN and \
                    other.waiting_on_tid == thread.tid:
                other.status = ThreadStatus.RUNNABLE
        if thread.tid == 0:
            # main returning terminates the process, as in C.
            raise _ProgramExit(value)

    def _do_call(self, tid: int, thread: Thread, ins: Instr) -> bool:
        """Execute a CALL.  Returns True if control flow was redirected
        (user call pushed a frame) and the caller must not advance."""
        callee = ins.callee
        if callee in self.module.functions:
            func = self.module.functions[callee]
            args = [self.eval_operand(tid, a) for a in ins.operands]
            regs = dict(zip(func.params, args))
            self._fire_flow(tid, ins.uid, FlowKind.CALL, target=callee)
            thread.frames.append(Frame(
                function=callee, block=func.entry, index=0, regs=regs,
                return_dst=ins.dst, stack_base=self._stack_top(tid),
                call_pc=ins.uid, call_line=ins.line))
            return True
        blocked = self._do_builtin(tid, thread, ins)
        return blocked

    # ------------------------------------------------------------------ builtins

    def _do_builtin(self, tid: int, thread: Thread, ins: Instr) -> bool:
        """Execute a builtin call; returns True if the thread blocked (the
        call will re-execute when the thread wakes up)."""
        name = ins.callee
        frame = thread.top

        def arg(i: int) -> int:
            return self.eval_operand(tid, ins.operands[i])

        if name == "malloc":
            self._set(tid, ins.dst, self.memory.malloc(arg(0), ins.uid))
        elif name == "free":
            self.memory.free(arg(0), ins.uid)
        elif name == "print":
            value = arg(0)
            try:
                rendered = str(value)
            except ValueError:
                # CPython >= 3.11 refuses int->str beyond ~4300 digits.
                # Simulated programs can legitimately grow such values
                # (unbounded ints stand in for machine words); render an
                # order-of-magnitude placeholder instead of crashing.
                rendered = f"<bigint {value.bit_length()} bits>"
            self.stdout.append(rendered)
        elif name == "print_str":
            self.stdout.append(self.memory.read_cstring(arg(0)))
        elif name == "strlen":
            self._set(tid, ins.dst, len(self.memory.read_cstring(arg(0))))
        elif name == "strcmp":
            a = self.memory.read_cstring(arg(0))
            b = self.memory.read_cstring(arg(1))
            self._set(tid, ins.dst, (a > b) - (a < b))
        elif name == "strcpy":
            dst, src = arg(0), arg(1)
            text = self.memory.read_cstring(src)
            for i, ch in enumerate(text):
                self.memory.write(dst + i, ord(ch))
            self.memory.write(dst + len(text), 0)
        elif name == "memset":
            base, value, count = arg(0), arg(1), arg(2)
            for i in range(count):
                self.memory.write(base + i, value)
        elif name == "atoi":
            text = self.memory.read_cstring(arg(0)).strip()
            sign = 1
            if text[:1] in ("+", "-"):
                sign = -1 if text[0] == "-" else 1
                text = text[1:]
            digits = ""
            for ch in text:
                if not ch.isdigit():
                    break
                digits += ch
            self._set(tid, ins.dst, sign * int(digits) if digits else 0)
        elif name == "usleep":
            self._sched_dirty = True
            thread.status = ThreadStatus.SLEEPING
            thread.wake_at_step = self.global_step + max(arg(0), 1)
        elif name == "abort":
            self._fail(FailureKind.ABORT, tid, ins.uid, "abort() called")
        elif name == "exit":
            raise _ProgramExit(arg(0))
        elif name == "mutex_create":
            addr = self.memory.malloc(1, ins.uid)
            self.mutexes.create(addr)
            self._set(tid, ins.dst, addr)
        elif name == "mutex_lock":
            return self._do_mutex_lock(tid, thread, ins)
        elif name == "mutex_unlock":
            self._do_mutex_unlock(tid, ins)
        elif name == "mutex_destroy":
            addr = arg(0)
            self.memory.read(addr)  # faults on NULL / UAF
            self.mutexes.destroy(addr)
            self.memory.free(addr, ins.uid)
        elif name == "cond_create":
            addr = self.memory.malloc(1, ins.uid)
            self.conds.create(addr)
            self._set(tid, ins.dst, addr)
        elif name == "cond_wait":
            return self._do_cond_wait(tid, thread, ins)
        elif name in ("cond_signal", "cond_broadcast"):
            addr = arg(0)
            self.memory.read(addr)  # faults on NULL / UAF
            cond = self.conds.get(addr)
            self._fire_sync(tid, ins.uid, name, addr)
            wake_all = name == "cond_broadcast"
            while cond.waiters:
                waiter = cond.waiters.pop(0)
                woken = self.threads[waiter]
                if woken.status is ThreadStatus.BLOCKED_COND:
                    self._sched_dirty = True
                    woken.status = ThreadStatus.RUNNABLE
                    woken.waiting_on_cond = 0
                    woken.cond_state = "signaled"
                if not wake_all:
                    break
        elif name == "cond_destroy":
            addr = arg(0)
            self.memory.read(addr)
            self.conds.destroy(addr)
            self.memory.free(addr, ins.uid)
        elif name == "thread_create":
            self._do_thread_create(tid, ins)
        elif name == "thread_join":
            return self._do_thread_join(tid, thread, ins)
        else:  # pragma: no cover - verifier rejects unknown callees
            raise RuntimeError(f"unknown builtin {name!r}")
        frame.index += 1
        return True  # we advanced the frame ourselves

    def _do_mutex_lock(self, tid: int, thread: Thread, ins: Instr) -> bool:
        addr = self.eval_operand(tid, ins.operands[0])
        self.memory.read(addr)  # NULL or freed mutex memory faults here
        mutex = self.mutexes.get(addr)
        if not mutex.locked:
            mutex.owner_tid = tid
            mutex.lock_count += 1
            self._fire_sync(tid, ins.uid, "mutex_lock", addr)
            thread.top.index += 1
            return True
        # Contended (including self-deadlock): block; the call re-executes
        # when an unlock wakes this thread.
        if tid not in mutex.waiters:
            mutex.waiters.append(tid)
        self._sched_dirty = True
        thread.status = ThreadStatus.BLOCKED_LOCK
        thread.waiting_on_lock = addr
        return True

    def _do_mutex_unlock(self, tid: int, ins: Instr) -> None:
        addr = self.eval_operand(tid, ins.operands[0])
        self.memory.read(addr)  # the Pbzip2 bug: unlock through NULL/freed
        mutex = self.mutexes.get(addr)
        self._fire_sync(tid, ins.uid, "mutex_unlock", addr)
        if mutex.owner_tid != tid:
            # Unlocking a mutex you don't hold is UB in pthreads; we make it
            # a no-op so corpus bugs fail from their memory effects instead.
            return
        mutex.owner_tid = -1
        waiters, mutex.waiters = mutex.waiters, []
        if waiters:
            self._sched_dirty = True
        for waiter in waiters:
            other = self.threads[waiter]
            if other.status is ThreadStatus.BLOCKED_LOCK:
                other.status = ThreadStatus.RUNNABLE
                other.waiting_on_lock = 0

    def _do_cond_wait(self, tid: int, thread: Thread, ins: Instr) -> bool:
        """pthread_cond_wait: atomically release the mutex and block; once
        signaled, reacquire the mutex before returning.

        The blocking-builtin protocol re-executes the call instruction on
        every wakeup; ``thread.cond_state`` distinguishes the first
        execution (release + block) from post-signal executions
        (mutex reacquisition attempts).
        """
        cond_addr = self.eval_operand(tid, ins.operands[0])
        mutex_addr = self.eval_operand(tid, ins.operands[1])
        self.memory.read(cond_addr)   # NULL / UAF condvar faults
        self.memory.read(mutex_addr)  # NULL / UAF mutex faults
        mutex = self.mutexes.get(mutex_addr)
        if thread.cond_state == "signaled":
            # Reacquire phase.
            if not mutex.locked:
                mutex.owner_tid = tid
                mutex.lock_count += 1
                thread.cond_state = ""
                self._fire_sync(tid, ins.uid, "cond_wait", cond_addr)
                thread.top.index += 1
                return True
            if tid not in mutex.waiters:
                mutex.waiters.append(tid)
            self._sched_dirty = True
            thread.status = ThreadStatus.BLOCKED_LOCK
            thread.waiting_on_lock = mutex_addr
            return True
        # First execution: release the mutex (waking lock waiters) and
        # join the condvar's wait queue.
        if mutex.owner_tid == tid:
            mutex.owner_tid = -1
            waiters, mutex.waiters = mutex.waiters, []
            if waiters:
                self._sched_dirty = True
            for waiter in waiters:
                other = self.threads[waiter]
                if other.status is ThreadStatus.BLOCKED_LOCK:
                    other.status = ThreadStatus.RUNNABLE
                    other.waiting_on_lock = 0
        cond = self.conds.get(cond_addr)
        if tid not in cond.waiters:
            cond.waiters.append(tid)
        self._sched_dirty = True
        thread.status = ThreadStatus.BLOCKED_COND
        thread.waiting_on_cond = cond_addr
        return True

    def _do_thread_create(self, tid: int, ins: Instr) -> None:
        routine = ins.operands[0]
        assert isinstance(routine, FuncRef)
        func = self.module.functions[routine.name]
        argval = self.eval_operand(tid, ins.operands[1])
        new_tid = self._next_tid
        self._next_tid += 1
        regs = dict(zip(func.params, [argval]))
        child = Thread(tid=new_tid, start_routine=routine.name)
        child.frames.append(Frame(function=func.name, block=func.entry,
                                  index=0, regs=regs,
                                  stack_base=self._stack_top(new_tid),
                                  call_pc=ins.uid, call_line=ins.line))
        self.threads[new_tid] = child
        self._sched_dirty = True
        self._set(tid, ins.dst, new_tid)
        self._fire_sync(tid, ins.uid, "thread_create", other_tid=new_tid)
        self._fire_flow(new_tid, ins.uid, FlowKind.THREAD_START,
                        target=routine.name)

    def _do_thread_join(self, tid: int, thread: Thread, ins: Instr) -> bool:
        target = self.eval_operand(tid, ins.operands[0])
        other = self.threads.get(target)
        if other is None or other.status is ThreadStatus.FINISHED:
            self._fire_sync(tid, ins.uid, "thread_join", other_tid=target)
            thread.top.index += 1
            return True
        self._sched_dirty = True
        thread.status = ThreadStatus.BLOCKED_JOIN
        thread.waiting_on_tid = target
        return True


def run_program(
    module: Module,
    args: Sequence[ArgValue] = (),
    scheduler: Optional[Scheduler] = None,
    tracers: Sequence[Tracer] = (),
    hooks: Optional[Dict[int, List[Hook]]] = None,
    entry: str = "main",
    max_steps: int = 500_000,
    strict_dispatch: Optional[bool] = None,
    mode: Optional[str] = None,
) -> RunOutcome:
    """One-shot convenience wrapper: build an interpreter and run it."""
    interp = Interpreter(module, entry=entry, args=args, scheduler=scheduler,
                         tracers=tracers, hooks=hooks, max_steps=max_steps,
                         strict_dispatch=strict_dispatch, mode=mode)
    return interp.run()
