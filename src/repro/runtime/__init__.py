"""Execution substrate: memory, threads, scheduling, interpretation, cost.

This package is the reproduction's stand-in for "production x86 execution":
it runs GIR programs with controllable thread interleavings, detects the
failure kinds the paper's corpus exhibits, and charges deterministic model
cycles so instrumentation overhead is measurable and reproducible.
"""

from .costmodel import CostModel, overhead_percent
from .events import (
    BranchEvent,
    FlowEvent,
    FlowKind,
    MemEvent,
    SyncEvent,
    Tracer,
)
from .failures import FailureKind, FailureReport, RunOutcome, StackFrameInfo
from .interpreter import Interpreter, run_program
from .memory import Memory, MemoryFault
from .scheduler import (
    FixedScheduler,
    PCTScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
)
from .sync import Mutex, MutexTable
from .threads import Frame, Thread, ThreadStatus

__all__ = [
    "BranchEvent",
    "CostModel",
    "FailureKind",
    "FailureReport",
    "FixedScheduler",
    "FlowEvent",
    "FlowKind",
    "Frame",
    "Interpreter",
    "MemEvent",
    "Memory",
    "MemoryFault",
    "Mutex",
    "MutexTable",
    "PCTScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "RunOutcome",
    "Scheduler",
    "StackFrameInfo",
    "SyncEvent",
    "Thread",
    "ThreadStatus",
    "Tracer",
    "overhead_percent",
    "run_program",
]
