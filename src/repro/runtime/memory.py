"""Simulated word-addressed memory.

The address space is partitioned into regions so that the rest of the system
can classify an address without metadata lookups (the paper's data-flow
tracker, for instance, refuses to watch stack addresses — §3.2.3):

====================  ==========================================
``0 .. 0xFFF``        the null page; any access faults (SEGFAULT)
``0x1000 ..``         globals
``0x80000 ..``        interned string data (read-only)
``0x100000 ..``       heap (bump-allocated blocks)
``0x10000000 ..``     per-thread stacks, ``0x100000`` slots apart
====================  ==========================================

Each slot holds one Python int.  The heap tracks block liveness so that
double frees, use-after-free, and out-of-bounds heap accesses produce the
failure kinds the bug corpus needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .failures import FailureKind

NULL_PAGE_END = 0x1000
GLOBAL_BASE = 0x1000
STRING_BASE = 0x80000
HEAP_BASE = 0x100000
STACK_BASE = 0x10000000
STACK_STRIDE = 0x100000


class MemoryFault(Exception):
    """Raised by memory accesses that the hardware would trap on."""

    def __init__(self, kind: FailureKind, address: int, detail: str = "") -> None:
        super().__init__(f"{kind.value} at {hex(address)} {detail}".strip())
        self.kind = kind
        self.address = address
        self.detail = detail


@dataclass
class HeapBlock:
    """Bookkeeping for one heap allocation (liveness + alloc/free pcs)."""
    base: int
    size: int
    freed: bool = False
    alloc_pc: int = -1
    free_pc: int = -1


class Memory:
    """The simulated address space for one program execution."""

    def __init__(self) -> None:
        self._slots: Dict[int, int] = {}
        self._global_top = GLOBAL_BASE
        self._string_top = STRING_BASE
        self._heap_top = HEAP_BASE
        self._blocks: Dict[int, HeapBlock] = {}     # base -> block
        self._block_index: list = []                # sorted bases for lookup
        self._global_names: Dict[int, str] = {}     # base addr -> name
        self._global_bases: Dict[str, int] = {}     # name -> base addr
        self._global_regions: list = []             # (base, size, name)
        self._stack_tops: Dict[int, int] = {}       # tid -> next free slot

    # -- region classification ------------------------------------------------

    @staticmethod
    def region_of(address: int) -> str:
        """One of 'null', 'global', 'string', 'heap', 'stack'."""
        if address < NULL_PAGE_END:
            return "null"
        if address < STRING_BASE:
            return "global"
        if address < HEAP_BASE:
            return "string"
        if address < STACK_BASE:
            return "heap"
        return "stack"

    def is_shared(self, address: int) -> bool:
        """Heuristic the watchpoint planner uses: globals/heap/strings are
        potentially shared between threads; stack slots are not."""
        return self.region_of(address) in ("global", "heap", "string")

    # -- globals ------------------------------------------------------------------

    def map_global(self, name: str, size: int,
                   init: Tuple[int, ...] = ()) -> int:
        size = max(size, 1)
        base = self._global_top
        self._global_top += size
        self._global_names[base] = name
        self._global_bases[name] = base
        self._global_regions.append((base, size, name))
        for i in range(size):
            self._slots[base + i] = init[i] if i < len(init) else 0
        return base

    def global_base(self, name: str) -> int:
        return self._global_bases[name]

    def global_name_at(self, address: int) -> Optional[str]:
        """Reverse map an address to the global containing it, if any."""
        for base, size, name in self._global_regions:
            if base <= address < base + size:
                return name
        return None

    # -- strings --------------------------------------------------------------------

    def map_string(self, value: str) -> int:
        """Map a NUL-terminated string; returns its base address."""
        base = self._string_top
        for i, ch in enumerate(value):
            self._slots[base + i] = ord(ch)
        self._slots[base + len(value)] = 0
        self._string_top = base + len(value) + 1
        return base

    # -- heap ------------------------------------------------------------------------

    def malloc(self, size: int, pc: int = -1) -> int:
        if size <= 0:
            size = 1
        base = self._heap_top
        # A one-slot guard gap between blocks makes off-by-one heap accesses
        # land on unmapped slots and fault, like a poisoned redzone.
        self._heap_top = base + size + 1
        block = HeapBlock(base=base, size=size, alloc_pc=pc)
        self._blocks[base] = block
        self._block_index.append(base)
        for i in range(size):
            self._slots[base + i] = 0
        return base

    def free(self, address: int, pc: int = -1) -> None:
        if address == 0:
            return  # free(NULL) is a no-op, as in C
        block = self._blocks.get(address)
        if block is None:
            raise MemoryFault(FailureKind.SEGFAULT, address,
                              "free of a non-heap pointer")
        if block.freed:
            raise MemoryFault(FailureKind.DOUBLE_FREE, address,
                              f"(first freed at pc={block.free_pc})")
        block.freed = True
        block.free_pc = pc

    def _block_containing(self, address: int) -> Optional[HeapBlock]:
        # Linear scan is fine: corpus programs allocate tens of blocks.
        for base in self._block_index:
            block = self._blocks[base]
            if base <= address < base + block.size:
                return block
        return None

    # -- stacks -----------------------------------------------------------------------

    def stack_alloc(self, tid: int, size: int) -> int:
        top = self._stack_tops.setdefault(tid, STACK_BASE + tid * STACK_STRIDE)
        base = top
        self._stack_tops[tid] = top + max(size, 1)
        for i in range(size):
            self._slots[base + i] = 0
        return base

    def stack_release(self, tid: int, base: int) -> None:
        """Pop the stack back to ``base`` (frame teardown)."""
        top = self._stack_tops.get(tid)
        if top is not None and base <= top:
            for addr in range(base, top):
                self._slots.pop(addr, None)
            self._stack_tops[tid] = base

    # -- access ------------------------------------------------------------------------

    def _check(self, address: int, is_write: bool) -> None:
        if address < NULL_PAGE_END:
            raise MemoryFault(FailureKind.SEGFAULT, address,
                              "null-page access")
        region = self.region_of(address)
        if region == "heap":
            block = self._block_containing(address)
            if block is None:
                raise MemoryFault(FailureKind.OUT_OF_BOUNDS, address,
                                  "heap access outside any block")
            if block.freed:
                raise MemoryFault(FailureKind.USE_AFTER_FREE, address,
                                  f"(freed at pc={block.free_pc})")
            return
        if region == "string" and is_write:
            raise MemoryFault(FailureKind.SEGFAULT, address,
                              "write to read-only string data")
        if address not in self._slots:
            raise MemoryFault(FailureKind.SEGFAULT, address,
                              f"unmapped {region} access")

    def read(self, address: int) -> int:
        # Fast path: a mapped global/string/stack slot cannot fault, so the
        # region checks collapse to one dict probe.  The heap is excluded —
        # a freed block's slots stay mapped precisely so use-after-free is
        # detectable, so heap hits must always run _check.
        if GLOBAL_BASE <= address < HEAP_BASE or address >= STACK_BASE:
            value = self._slots.get(address)
            if value is not None:
                return value
        self._check(address, is_write=False)
        return self._slots.get(address, 0)

    def write(self, address: int, value: int) -> None:
        # Fast path mirrors read() but additionally excludes the read-only
        # string region (writes there must SEGFAULT via _check).
        if (GLOBAL_BASE <= address < STRING_BASE or address >= STACK_BASE) \
                and address in self._slots:
            self._slots[address] = value
            return
        self._check(address, is_write=True)
        self._slots[address] = value

    # -- string helpers (builtins) ------------------------------------------------------

    def read_cstring(self, address: int, limit: int = 1 << 16) -> str:
        chars = []
        for i in range(limit):
            v = self.read(address + i)
            if v == 0:
                return "".join(chars)
            chars.append(chr(v & 0x10FFFF))
        raise MemoryFault(FailureKind.SEGFAULT, address,
                          "unterminated string")
