"""Mutex bookkeeping for the interpreter.

Mutexes are heap-allocated objects (``mutex_create`` mallocs one slot), so
pointer bugs against them behave like the real thing: unlocking through a
NULL ``f->mut`` segfaults (the Pbzip2 bug of Fig. 1) and locking a destroyed
mutex is a use-after-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class CondVar:
    """A condition variable: heap-allocated like mutexes, so NULL/UAF
    misuse faults exactly as pthreads objects backed by freed memory do."""

    address: int
    waiters: List[int] = field(default_factory=list)


@dataclass
class Mutex:
    """A non-recursive mutex: owner thread plus FIFO-ish waiters."""
    address: int
    owner_tid: int = -1              # -1 = unlocked
    waiters: List[int] = field(default_factory=list)
    lock_count: int = 0              # non-recursive; count for diagnostics

    @property
    def locked(self) -> bool:
        return self.owner_tid != -1


class MutexTable:
    """All live mutexes, keyed by their heap address."""

    def __init__(self) -> None:
        self._mutexes: Dict[int, Mutex] = {}

    def create(self, address: int) -> Mutex:
        mutex = Mutex(address=address)
        self._mutexes[address] = mutex
        return mutex

    def get(self, address: int) -> Mutex:
        """Look a mutex up; missing means the pointer never was a mutex
        (caller is responsible for having validated the memory access)."""
        mutex = self._mutexes.get(address)
        if mutex is None:
            # Treat an unknown-but-mapped address as an implicitly
            # initialized mutex, like PTHREAD_MUTEX_INITIALIZER memory.
            mutex = self.create(address)
        return mutex

    def destroy(self, address: int) -> None:
        self._mutexes.pop(address, None)

    def held_by(self, tid: int) -> List[Mutex]:
        return [m for m in self._mutexes.values() if m.owner_tid == tid]


class CondTable:
    """All live condition variables, keyed by heap address."""

    def __init__(self) -> None:
        self._conds: Dict[int, CondVar] = {}

    def create(self, address: int) -> CondVar:
        cond = CondVar(address=address)
        self._conds[address] = cond
        return cond

    def get(self, address: int) -> CondVar:
        cond = self._conds.get(address)
        if cond is None:
            cond = self.create(address)  # PTHREAD_COND_INITIALIZER memory
        return cond

    def destroy(self, address: int) -> None:
        self._conds.pop(address, None)
