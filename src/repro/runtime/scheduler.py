"""Thread schedulers.

Concurrency bugs in the corpus manifest only under particular interleavings,
so scheduling is a first-class, *seeded* concern:

- :class:`RandomScheduler` drives "production" runs: each seed is one
  simulated user execution, and some seeds produce the failing interleaving.
- :class:`RoundRobinScheduler` is a deterministic sanity scheduler.
- :class:`FixedScheduler` replays an explicit interleaving; corpus bugs use
  it to pin down their *failing* schedule, and the record/replay baseline
  uses it to prove faithful replay.

Schedulers decide at every instruction boundary, and are additionally
consulted at *yield points* (blocking sync ops, usleep), which is where real
preemption is most likely and where races interleave.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple


class Scheduler:
    """Picks which runnable thread executes the next instruction.

    Contract: the interpreter calls :meth:`pick` exactly once per retired
    instruction, *including* when only one thread is runnable.  Stateful
    schedulers (seeded RNGs, quantum counters) advance their state per
    pick, so an "optimized" loop that skipped single-thread picks would
    desync every interleaving downstream of the first spawn.  Both
    interpreter dispatch modes preserve this, and the hot-path A/B
    equivalence tests depend on it.
    """

    def pick(self, runnable: Sequence[int], current: Optional[int],
             step: int) -> int:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class RoundRobinScheduler(Scheduler):
    """Runs each thread for ``quantum`` steps, cycling in tid order."""

    def __init__(self, quantum: int = 50) -> None:
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.quantum = quantum
        self._remaining = quantum

    def pick(self, runnable: Sequence[int], current: Optional[int],
             step: int) -> int:
        if current in runnable and self._remaining > 0:
            self._remaining -= 1
            return current  # type: ignore[return-value]
        self._remaining = self.quantum - 1
        if current is None or current not in runnable:
            return runnable[0]
        ordered = sorted(runnable)
        for tid in ordered:
            if tid > current:
                return tid
        return ordered[0]

    def describe(self) -> str:
        return f"round-robin(quantum={self.quantum})"


class RandomScheduler(Scheduler):
    """Seeded random preemption.

    ``switch_prob`` is the per-step probability of a context switch; the
    default (0.02) preempts every ~50 instructions, small enough that most
    runs of a racy program succeed and a minority fail — the regime the
    paper's cooperative setting assumes (rare in-production failures).
    """

    def __init__(self, seed: int, switch_prob: float = 0.02) -> None:
        if not 0.0 <= switch_prob <= 1.0:
            raise ValueError("switch_prob must be within [0, 1]")
        self.seed = seed
        self.switch_prob = switch_prob
        self._rng = random.Random(seed)

    def pick(self, runnable: Sequence[int], current: Optional[int],
             step: int) -> int:
        if current in runnable and self._rng.random() >= self.switch_prob:
            return current  # type: ignore[return-value]
        return runnable[self._rng.randrange(len(runnable))]

    def describe(self) -> str:
        return f"random(seed={self.seed}, p={self.switch_prob})"


class PCTScheduler(Scheduler):
    """Probabilistic Concurrency Testing (Burckhardt et al.; the approach
    behind the paper's [47] CHESS/Heisenbugs line of work).

    Threads get distinct random priorities; the scheduler always runs the
    highest-priority runnable thread, except at ``depth - 1`` pre-chosen
    *change points* where the current thread's priority drops below
    everyone else's.  For a bug of depth d, a run finds it with probability
    ≥ 1/(n · k^(d-1)) — much better than uniform random preemption for
    rare orderings, which makes PCT a useful corpus-calibration tool.
    """

    def __init__(self, seed: int, depth: int = 3,
                 expected_steps: int = 10_000, max_threads: int = 16) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.seed = seed
        self.depth = depth
        rng = random.Random(seed)
        # Initial priorities: a random permutation band well above the
        # change-point priorities (which are 0..depth-2, lower = weaker).
        base = list(range(depth, depth + max_threads))
        rng.shuffle(base)
        self._priorities = {tid: base[tid % max_threads]
                            for tid in range(max_threads)}
        self._change_points = sorted(
            rng.randrange(max(expected_steps, 1))
            for _ in range(depth - 1))
        self._next_change = 0
        self._steps = 0
        self._rng = rng

    def _priority(self, tid: int) -> int:
        if tid not in self._priorities:
            self._priorities[tid] = self._rng.randrange(
                self.depth, self.depth + 100)
        return self._priorities[tid]

    def pick(self, runnable: Sequence[int], current: Optional[int],
             step: int) -> int:
        self._steps += 1
        chosen = max(runnable, key=self._priority)
        if self._next_change < len(self._change_points) and \
                self._steps >= self._change_points[self._next_change]:
            # Demote the running thread to the next change-point priority.
            self._priorities[chosen] = self._next_change
            self._next_change += 1
            chosen = max(runnable, key=self._priority)
        return chosen

    def describe(self) -> str:
        return f"pct(seed={self.seed}, depth={self.depth})"


class FixedScheduler(Scheduler):
    """Replays an explicit interleaving.

    The plan is a list of ``(tid, steps)`` pairs.  When the plan runs out —
    or names a thread that is not currently runnable — the scheduler falls
    back to the lowest runnable tid, so a plan only needs to pin down the
    critical window of the interleaving, not the whole execution.
    """

    def __init__(self, plan: Sequence[Tuple[int, int]]) -> None:
        self.plan: List[Tuple[int, int]] = [(t, n) for t, n in plan]
        self._index = 0
        self._used = 0

    def pick(self, runnable: Sequence[int], current: Optional[int],
             step: int) -> int:
        while self._index < len(self.plan):
            tid, steps = self.plan[self._index]
            if self._used >= steps:
                self._index += 1
                self._used = 0
                continue
            if tid in runnable:
                self._used += 1
                return tid
            # The planned thread can't run (blocked/finished): the plan's
            # remaining quantum for it is abandoned.
            self._index += 1
            self._used = 0
        return min(runnable)

    def describe(self) -> str:
        return f"fixed(plan={self.plan})"
