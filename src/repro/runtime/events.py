"""Execution events and the tracer interface.

The interpreter is observable: any number of :class:`Tracer` objects can be
attached to a run.  This is how every dynamic component in the reproduction
plugs in without the interpreter knowing about it:

- the Intel-PT encoder subscribes to control-flow events,
- the hardware watchpoint unit subscribes to memory events,
- the record/replay baseline subscribes to everything,
- Gist's client instrumentation runs as per-pc hooks (see
  :mod:`repro.instrument.patch`), and
- the cost model charges each tracer's declared per-event costs.

Events carry the *global step number*, a monotonically increasing counter
across all threads.  That counter is what gives watchpoint trap records their
total order (the property the paper gets from handling watchpoint traps
atomically, §4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..lang.ir import Instr
    from .interpreter import Interpreter


class FlowKind(enum.Enum):
    """Control transfers that an Intel-PT-like tracer cares about."""

    COND_BRANCH = "cond"      # BR: encoded as a TNT bit
    JUMP = "jmp"              # direct: compressed away by PT
    CALL = "call"             # direct: compressed away by PT
    RET = "ret"               # indirect: encoded as a TIP packet
    THREAD_START = "tstart"   # trace stream begins for a thread
    THREAD_END = "tend"


@dataclass(frozen=True)
class BranchEvent:
    """A retired conditional branch (one TNT bit for PT)."""
    step: int
    tid: int
    pc: int
    taken: bool
    target_label: str


@dataclass(frozen=True)
class FlowEvent:
    """A retired unconditional transfer (jmp/call/ret/thread edge)."""
    step: int
    tid: int
    pc: int
    kind: FlowKind
    target: str = ""          # callee / block label / return-to description
    target_pc: int = -1


@dataclass(frozen=True)
class MemEvent:
    """A retired load/store with its resolved address and value."""
    step: int
    tid: int
    pc: int
    address: int
    is_write: bool
    value: int


@dataclass(frozen=True)
class SyncEvent:
    """A completed synchronization builtin (lock, join, signal, ...)."""
    step: int
    tid: int
    pc: int
    op: str                   # mutex_lock / mutex_unlock / thread_join / ...
    object_address: int = 0
    other_tid: int = -1


class Tracer:
    """Base class for execution observers.  All callbacks are optional.

    ``cost_*`` class attributes declare the per-event runtime cost (in model
    cycles) that attaching this tracer imposes on the production run; the
    interpreter accumulates them into :attr:`RunOutcome.extra_cost`.  A pure
    observer used for measurement (not deployed to production) leaves them
    at zero.
    """

    cost_per_step: int = 0
    cost_per_branch: int = 0
    cost_per_mem: int = 0
    cost_per_flow: int = 0

    def on_start(self, interp: "Interpreter") -> None:
        """Called once before the first instruction executes."""

    def on_step(self, interp: "Interpreter", tid: int, ins: "Instr") -> None:
        """Called before each instruction executes."""

    def on_branch(self, interp: "Interpreter", event: BranchEvent) -> None:
        """Called after a conditional branch retires."""

    def on_flow(self, interp: "Interpreter", event: FlowEvent) -> None:
        """Called after an unconditional transfer (jmp/call/ret) retires."""

    def on_mem(self, interp: "Interpreter", event: MemEvent) -> None:
        """Called after a load/store retires (address and value known)."""

    def on_sync(self, interp: "Interpreter", event: SyncEvent) -> None:
        """Called when a synchronization builtin completes."""

    def on_finish(self, interp: "Interpreter") -> None:
        """Called once when the program stops (normally or by failure)."""

    def dynamic_extra_cost(self) -> int:
        """Cost not expressible per-event (e.g. buffer flushes); polled at
        the end of the run."""
        return 0


#: Callback names the interpreter builds subscriber lists for.
_SUBSCRIBABLE = ("on_step", "on_branch", "on_flow", "on_mem", "on_sync")


def subscribes(tracer: Tracer, name: str) -> bool:
    """Does ``tracer`` want ``name`` (e.g. ``"on_mem"``) callbacks?

    Default rule: a tracer subscribes to an event kind iff its class
    overrides the callback — the base class no-ops carry no information, so
    skipping them is unobservable.  A tracer whose interest cannot be read
    off its class (e.g. it inherits an override it only sometimes needs)
    can declare a ``wants_on_mem``-style attribute/property, which takes
    precedence.  The answer is sampled once per run, at run start: a tracer
    must not change its subscriptions mid-run (state that *toggles* mid-run,
    like an initially-empty watchpoint register file, belongs behind an
    early return inside the callback instead).
    """
    override = getattr(tracer, "wants_" + name, None)
    if override is not None:
        return bool(override)
    if name in tracer.__dict__:  # instance-level handler assignment
        return True
    return getattr(type(tracer), name) is not getattr(Tracer, name)
