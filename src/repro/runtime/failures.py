"""Failure reports.

A :class:`FailureReport` is what a production run ships to the Gist server
(input ① in the paper's Fig. 2): the failure kind, the failing program
counter, and a stack trace.  Gist matches "the same failure across multiple
executions ... by matching the program counters and stack traces of those
executions" (paper §3, footnote 1); :meth:`FailureReport.identity` implements
exactly that matching key.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class FailureKind(enum.Enum):
    """The failure classes the interpreter detects (paper §3.3).

    ``DATA_RACE`` and ``NULL_DEREF`` are produced by the detection
    subsystem (:mod:`repro.detect`), not by the interpreter itself: a
    happens-before detector promotes racy access pairs, and a null-origin
    tracer reclassifies null-page segfaults with a creation-site chain.
    """
    SEGFAULT = "segfault"
    DOUBLE_FREE = "double free"
    USE_AFTER_FREE = "use after free"
    OUT_OF_BOUNDS = "out of bounds"
    ASSERTION = "assertion failure"
    DEADLOCK = "deadlock"
    HANG = "hang"
    ABORT = "abort"
    DIV_BY_ZERO = "division by zero"
    DATA_RACE = "data race"
    NULL_DEREF = "null dereference"


@dataclass(frozen=True)
class StackFrameInfo:
    """One stack-trace entry: the function and the call-site / fault pc."""

    function: str
    pc: int
    line: int = 0

    def __str__(self) -> str:
        return f"{self.function}@{self.pc} (line {self.line})"


@dataclass(frozen=True)
class RaceAccess:
    """One side of a racing access pair (who touched the address, where)."""

    tid: int
    pc: int                      # uid of the load/store instruction
    step: int                    # global step number of the access
    is_write: bool
    value: int = 0
    stack: Tuple[StackFrameInfo, ...] = ()


@dataclass(frozen=True)
class RaceInfo:
    """A happens-before race: two unordered accesses to one address with
    disjoint locksets.  ``second`` is the later access in global step
    order (the one the report's pc/stack point at)."""

    address: int
    first: RaceAccess
    second: RaceAccess


@dataclass(frozen=True)
class OriginHop:
    """One hop of a null-origin causality chain (Casper-style): where a
    null was created, how it propagated, and where it was dereferenced."""

    kind: str                    # "origin" | "propagation" | "deref"
    tid: int
    pc: int                      # uid of the store / faulting instruction
    step: int
    function: str = ""
    line: int = 0
    address: Optional[int] = None  # destination address of the null store


@dataclass(frozen=True)
class FailureReport:
    """Everything a client reports about one failure occurrence.

    ``race`` and ``origin`` are optional detection-subsystem enrichments;
    they default to empty so reports from clients without detectors (and
    their wire encodings) are unchanged.
    """

    kind: FailureKind
    pc: int                      # uid of the faulting instruction
    tid: int
    message: str = ""
    stack: Tuple[StackFrameInfo, ...] = ()
    address: Optional[int] = None  # faulting address, when applicable
    race: Optional[RaceInfo] = None
    origin: Tuple[OriginHop, ...] = ()

    def identity(self) -> str:
        """Stable hash identifying "the same failure" across runs.

        Uses the failure kind, the faulting pc, and the function names on
        the stack — but not data values or thread ids, which legitimately
        vary between recurrences of one bug.
        """
        h = hashlib.sha256()
        h.update(self.kind.value.encode())
        h.update(str(self.pc).encode())
        for frame in self.stack:
            h.update(frame.function.encode())
        return h.hexdigest()[:16]

    def format(self) -> str:
        lines = [f"{self.kind.value} at pc={self.pc} (thread {self.tid})"]
        if self.message:
            lines.append(f"  message: {self.message}")
        if self.address is not None:
            lines.append(f"  address: {hex(self.address)}")
        for frame in self.stack:
            lines.append(f"  at {frame}")
        if self.race is not None:
            for label, acc in (("first", self.race.first),
                               ("second", self.race.second)):
                rw = "write" if acc.is_write else "read"
                lines.append(f"  racing {label}: {rw} of "
                             f"{hex(self.race.address)} by thread {acc.tid} "
                             f"at pc={acc.pc}")
                for frame in acc.stack:
                    lines.append(f"    at {frame}")
        for hop in self.origin:
            lines.append(f"  null {hop.kind}: {hop.function} line {hop.line} "
                         f"(pc={hop.pc}, thread {hop.tid})")
        return "\n".join(lines)


@dataclass
class RunOutcome:
    """Summary of one execution: did it fail, and how."""

    failed: bool
    failure: Optional[FailureReport] = None
    exit_value: int = 0
    steps: int = 0
    base_cost: int = 0
    extra_cost: int = 0
    stdout: List[str] = field(default_factory=list)

    @property
    def overhead(self) -> float:
        """Instrumentation overhead as a fraction of the base run cost."""
        if self.base_cost == 0:
            return 0.0
        return self.extra_cost / self.base_cost
