"""The ``repro`` command-line interface.

A developer-facing front door to the whole pipeline::

    python -m repro compile  prog.minic            # dump GIR
    python -m repro run      prog.minic 4 --seed 7 # execute once
    python -m repro trace    prog.minic 4          # full-PT trace a run
    python -m repro diagnose prog.minic 4 --switch-prob 0.05 \\
                             --html sketch.html    # run Gist end-to-end
    python -m repro corpus list                    # the 11 Table-1 bugs
    python -m repro corpus show pbzip2-1           # sources + ideal sketch
    python -m repro corpus diagnose pbzip2-1       # campaign on one bug
    python -m repro corpus campaign pbzip2-1 curl-965 memcached-127 \\
                             --shards 2 --cohort-size 1000 \\
                             --scheduler infogain # concurrent campaigns

Program arguments after the file are parsed as integers when possible and
passed as strings otherwise (so ``run curl.minic '{}{' 400`` works).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis import compute_slice
from .core import (
    CooperativeDeployment,
    Gist,
    Workload,
    constant_factory,
    render_sketch,
    score,
)
from .core.html import render_html
from .core.serialize import sketch_to_json
from .core.streaming import STATS_KINDS
from .lang import compile_source, verify
from .pt import PTConfig, PTDecoder, PTEncoder
from .runtime import Interpreter, RandomScheduler


def _parse_args_values(raw: Sequence[str]) -> List:
    out: List = []
    for token in raw:
        try:
            out.append(int(token, 0))
        except ValueError:
            out.append(token)
    return out


def _load_module(path: str):
    with open(path) as handle:
        source = handle.read()
    module = compile_source(source, module_name=path)
    verify(module)
    return module


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def cmd_compile(args: argparse.Namespace) -> int:
    """``repro compile``: dump a program's GIR assembly."""
    module = _load_module(args.program)
    print(module.format())
    print(f"\n; {module.num_instructions()} instructions, "
          f"{len(module.functions)} functions, "
          f"{len(module.globals)} globals", file=sys.stderr)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """``repro run``: execute a program once and report the outcome."""
    module = _load_module(args.program)
    scheduler = (RandomScheduler(args.seed, args.switch_prob)
                 if args.seed is not None else None)
    interp = Interpreter(module, args=_parse_args_values(args.args),
                         scheduler=scheduler, max_steps=args.max_steps,
                         strict_dispatch=(True if args.strict_dispatch
                                          else None),
                         mode=args.interp,
                         profile=args.profile_run)
    outcome = interp.run()
    for line in outcome.stdout:
        print(line)
    if interp.profile_data is not None:
        print(_format_profile(interp.profile_data), file=sys.stderr)
    if outcome.failed:
        print(outcome.failure.format(), file=sys.stderr)
        return 1
    print(f"exit={outcome.exit_value} steps={outcome.steps} "
          f"cycles={outcome.base_cost}", file=sys.stderr)
    return 0


def _format_profile(profile: dict) -> str:
    """Render a profiled run's per-phase breakdown for stderr."""
    steps = profile["steps"]
    wall = profile["wall_s"]
    phases = profile["phases"]
    accounted = sum(phases.values()) or 1.0
    lines = [f"profile: {steps} steps in {wall:.3f}s "
             f"({steps / wall:,.0f} steps/sec)" if wall > 0
             else f"profile: {steps} steps"]
    for name in ("schedule", "fetch", "trace", "dispatch"):
        seconds = phases[name]
        lines.append(f"  {name:<9} {seconds:8.3f}s "
                     f"{100.0 * seconds / accounted:5.1f}%")
    return "\n".join(lines)


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: run under full PT tracing and decode the stream."""
    module = _load_module(args.program)
    encoder = PTEncoder(PTConfig(), trace_on_start=True)
    scheduler = (RandomScheduler(args.seed, args.switch_prob)
                 if args.seed is not None else None)
    interp = Interpreter(module, args=_parse_args_values(args.args),
                         scheduler=scheduler, tracers=[encoder],
                         max_steps=args.max_steps, mode=args.interp)
    outcome = interp.run()
    decoder = PTDecoder(module)
    print(f"run: {'FAILED' if outcome.failed else 'ok'}, "
          f"{outcome.steps} instructions")
    for tid in sorted(encoder.buffers):
        raw = encoder.raw_trace(tid)
        trace = decoder.decode(raw)
        seq = trace.executed_sequence()
        print(f"thread {tid}: {len(raw)} trace bytes, "
              f"{len(trace.windows)} windows, {len(seq)} instructions "
              f"decoded "
              f"({8 * len(raw) / max(len(seq), 1):.2f} bits/instr)")
        if args.verbose:
            for uid in seq:
                ins = module.instr(uid)
                print(f"  T{tid} #{uid:<5} {ins.func_name}:{ins.line} "
                      f"{ins.format()}")
    print(f"full-trace overhead: {100 * outcome.overhead:.2f}%")
    return 0


def cmd_coverage(args: argparse.Namespace) -> int:
    """``repro coverage``: accumulate PT-based coverage over N runs."""
    from .analysis.coverage import coverage_from_traces

    module = _load_module(args.program)
    decoder = PTDecoder(module)
    traces = []
    base_seed = args.seed if args.seed is not None else 0
    for run_index in range(args.runs):
        encoder = PTEncoder(PTConfig(), trace_on_start=True)
        scheduler = RandomScheduler(base_seed + run_index,
                                    args.switch_prob)
        interp = Interpreter(module, args=_parse_args_values(args.args),
                             scheduler=scheduler, tracers=[encoder],
                             max_steps=args.max_steps, mode=args.interp)
        interp.run()
        for tid in sorted(encoder.buffers):
            traces.append(decoder.decode(encoder.raw_trace(tid)))
    report = coverage_from_traces(module, traces)
    print(report.format())
    return 0


def cmd_slice(args: argparse.Namespace) -> int:
    """``repro slice``: print the static backward slice from a uid."""
    module = _load_module(args.program)
    slice_ = compute_slice(module, args.uid)
    print(slice_.format())
    return 0


def _fleet_jobs(args: argparse.Namespace) -> int:
    """Effective worker count: ``--jobs`` overrides ``--fleet-workers``."""
    return args.jobs if args.jobs is not None else args.fleet_workers


def _detectors(args: argparse.Namespace, spec=None) -> tuple:
    """Detector names for a run: ``--detectors`` wins; corpus bugs fall
    back to the detectors their spec declares."""
    from .detect import validate_detectors

    raw = getattr(args, "detectors", None)
    if raw is None:
        return tuple(spec.detectors) if spec is not None else ()
    if raw in ("", "none"):
        return ()
    return validate_detectors(raw.split(","))


def cmd_diagnose(args: argparse.Namespace) -> int:
    """``repro diagnose``: run a full Gist campaign on a program."""
    module = _load_module(args.program)
    gist = Gist(module, bug=args.bug or args.program,
                endpoints=args.endpoints, ptwrite=args.ptwrite,
                detectors=_detectors(args),
                ranker=args.ranker,
                stats=args.stats,
                fleet_workers=_fleet_jobs(args),
                executor=args.executor,
                analysis_cache_dir=args.cache_dir,
                transport=args.fleet_transport,
                fault_plan=args.fault_plan,
                interp_mode=args.interp,
                shards=args.shards,
                cohort_size=args.cohort_size,
                cohort_share=args.cohort_share,
                scheduler=args.scheduler,
                quantum=args.quantum,
                journal_dir=args.journal_dir,
                batch_bytes=args.batch_bytes,
                batch_ms=args.batch_ms)
    workload = Workload(args=tuple(_parse_args_values(args.args)),
                        switch_prob=args.switch_prob,
                        max_steps=args.max_steps)
    result = gist.diagnose(constant_factory(workload),
                           initial_sigma=args.sigma,
                           max_iterations=args.max_iterations)
    if result.sketch is None:
        print("no failure observed; nothing to diagnose", file=sys.stderr)
        return 1
    print(result.rendered())
    _export(result.sketch, args)
    return 0


def cmd_corpus(args: argparse.Namespace) -> int:
    """``repro corpus``: list/show/diagnose the evaluation corpus."""
    from .corpus import all_bugs, get_bug

    if args.corpus_command == "list":
        specs = all_bugs(include_extra=True)
        if args.kind:
            specs = [spec for spec in specs
                     if spec.failure_kind.value == args.kind]
        for spec in specs:
            marker = "extra" if spec.extra else "T1"
            detectors = ",".join(spec.detectors) or "-"
            print(f"{spec.bug_id:<18} {spec.software[:24]:<24} "
                  f"{spec.kind:<12} {spec.failure_kind.value:<18} "
                  f"{marker:<6} {detectors:<18} "
                  f"{spec.description[:48]}")
        if not specs:
            print(f"no corpus bugs with failure kind {args.kind!r}",
                  file=sys.stderr)
            return 1
        return 0

    if args.corpus_command == "campaign":
        return _cmd_corpus_campaign(args)

    spec = get_bug(args.bug_id)
    if args.corpus_command == "show":
        print(f"# {spec.bug_id}: {spec.description}\n")
        print(spec.source)
        ideal = spec.ideal_sketch()
        print(f"# ideal sketch: {sorted(ideal.statements)}")
        print(f"# root cause  : {sorted(ideal.root_cause)} "
              f"{ideal.value_roots}")
        return 0

    if args.corpus_command == "diagnose":
        from .analysis.context import AnalysisContext

        module = spec.module()
        context = AnalysisContext(module, cache_dir=args.cache_dir)
        with CooperativeDeployment(
                module, spec.workload_factory,
                endpoints=args.endpoints, bug=spec.bug_id,
                context=context, fleet_workers=_fleet_jobs(args),
                executor=args.executor,
                transport=args.fleet_transport,
                fault_plan=args.fault_plan,
                interp_mode=args.interp,
                journal_dir=args.journal_dir,
                batch_bytes=args.batch_bytes,
                batch_ms=args.batch_ms,
                detectors=_detectors(args, spec),
                ranker=args.ranker,
                stats=args.stats) as deployment:
            stats = deployment.run_campaign(
                stop_when=spec.sketch_has_root,
                max_iterations=args.max_iterations)
        context.save()
        if stats.sketch is None:
            print("failure never recurred", file=sys.stderr)
            return 1
        print(render_sketch(stats.sketch))
        accuracy = score(stats.sketch, spec.ideal_sketch())
        print(f"\naccuracy: relevance {accuracy.relevance:.0f}%, "
              f"ordering {accuracy.ordering:.0f}%, "
              f"overall {accuracy.overall:.0f}%")
        _export(stats.sketch, args)
        return 0

    raise AssertionError(f"unknown corpus command {args.corpus_command}")


def _cmd_corpus_campaign(args: argparse.Namespace) -> int:
    """``repro corpus campaign``: N concurrent campaigns, shared fleet."""
    from .analysis.context import AnalysisContext
    from .control import CampaignSpec, ControlPlane
    from .corpus import all_bug_ids, get_bug

    bug_ids = list(args.bug_ids)
    if bug_ids == ["all"]:
        bug_ids = all_bug_ids()
    specs = []
    contexts = []
    for bug_id in bug_ids:
        spec = get_bug(bug_id)
        module = spec.module()
        context = AnalysisContext(module, cache_dir=args.cache_dir)
        contexts.append(context)
        specs.append(CampaignSpec(bug=spec.bug_id, module=module,
                                  workload_factory=spec.workload_factory,
                                  stop_when=spec.sketch_has_root,
                                  context=context,
                                  detectors=_detectors(args, spec)))
    plane = ControlPlane(specs, shards=args.shards,
                         endpoints=args.endpoints,
                         cohort_size=args.cohort_size,
                         cohort_share=args.cohort_share,
                         scheduler=args.scheduler, quantum=args.quantum,
                         fleet_workers=_fleet_jobs(args),
                         executor=args.executor,
                         fault_plan=args.fault_plan,
                         transport=args.fleet_transport,
                         journal_dir=args.journal_dir,
                         interp_mode=args.interp,
                         max_iterations=args.max_iterations,
                         ranker=args.ranker, stats=args.stats)
    result = plane.run()
    for context in contexts:
        context.save()

    print(f"control plane: {len(specs)} campaigns, {args.shards} shard(s), "
          f"{args.endpoints} endpoints x cohort {args.cohort_size} "
          f"= {result.fleet_scale:,} modeled clients")
    print(f"scheduler: {args.scheduler}, {result.rounds} rounds, "
          f"round budget {result.round_budget} runs "
          f"(peak round used {result.max_round_runs}), "
          f"{result.total_runs} total runs, {result.wall_seconds:.2f}s")
    print(f"cross-shard merge verified: {result.merge_verified}")
    if args.stats == "streaming":
        tracked = sum(s.tracked_runs for s in result.stats.values())
        peak = max((s.peak_tracked_bytes for s in result.stats.values()),
                   default=0)
        saved = sum(s.payload_bytes_saved for s in result.stats.values())
        print(f"streaming stats: {tracked} runs tracked, peak state "
              f"{peak:,} bytes, evidence slicing saved {saved:,} "
              f"payload bytes")
    all_found = True
    for bug_id in bug_ids:
        stats = result.stats[bug_id]
        cluster_key = result.cluster_key_of.get(bug_id, "?")
        shard = result.shard_of.get(cluster_key, "?")
        status = "found" if stats.found else \
            ("sketched" if stats.sketch is not None else "no sketch")
        all_found = all_found and stats.found
        print(f"  {bug_id:<18} shard {shard}  "
              f"runs {result.runs_of[bug_id]:<5} "
              f"iterations {stats.iterations}  {status}")
        if stats.sketch is not None:
            accuracy = score(stats.sketch, get_bug(bug_id).ideal_sketch())
            print(f"  {'':<18} accuracy {accuracy.overall:.0f}% "
                  f"(relevance {accuracy.relevance:.0f}%, "
                  f"ordering {accuracy.ordering:.0f}%)")
        if args.show_sketches and stats.sketch is not None:
            print()
            print(render_sketch(stats.sketch))
            print()
    return 0 if all_found else 1


def cmd_fleet(args: argparse.Namespace) -> int:
    """``repro fleet serve|client``: a diagnosis as separate processes."""
    from .fleet.serve import client_main, serve_main

    batch = dict(batch_messages=args.batch_messages,
                 batch_ms=args.batch_ms if args.batch_ms is not None
                 else 0.0)
    if args.batch_bytes is not None:
        batch["batch_bytes"] = args.batch_bytes
    if args.fleet_command == "serve":
        return serve_main(
            args.bug_id, args.socket,
            journal_dir=args.journal_dir,
            initial_sigma=args.sigma,
            max_iterations=args.max_iterations,
            timeout=args.timeout, **batch)
    return client_main(
        args.bug_id, args.socket,
        endpoints=args.endpoints, base=args.base,
        timeout=args.timeout, **batch)


def _export(sketch, args: argparse.Namespace) -> None:
    if getattr(args, "html", None):
        with open(args.html, "w") as handle:
            handle.write(render_html(sketch))
        print(f"wrote {args.html}", file=sys.stderr)
    if getattr(args, "json", None):
        with open(args.json, "w") as handle:
            handle.write(sketch_to_json(sketch))
        print(f"wrote {args.json}", file=sys.stderr)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Failure sketching (Gist, SOSP 2015) — reproduction")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def interp_flag(p):
        p.add_argument("--interp",
                       choices=("compiled", "decoded", "strict"),
                       default=None,
                       help="interpreter tier: 'compiled' (GIR compiled to "
                            "Python, default), 'decoded' (pre-decoded "
                            "streams), or 'strict' (reference dispatch); "
                            "instrumented runs always use 'decoded'")

    def common_run_flags(p):
        p.add_argument("args", nargs="*", help="program arguments")
        p.add_argument("--seed", type=int, default=None,
                       help="random-scheduler seed")
        p.add_argument("--switch-prob", type=float, default=0.02)
        p.add_argument("--max-steps", type=int, default=500_000)
        interp_flag(p)

    p = sub.add_parser("compile", help="compile MiniC and dump GIR")
    p.add_argument("program")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="execute a MiniC program once")
    p.add_argument("program")
    common_run_flags(p)
    p.add_argument("--profile-run", action="store_true",
                   help="print a per-phase breakdown of interpreter time "
                        "(schedule/fetch/trace/dispatch) to stderr")
    p.add_argument("--strict-dispatch", action="store_true",
                   help="use the reference (pre-overhaul) execution path "
                        "instead of the pre-decoded hot path")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("trace", help="run under full Intel-PT tracing")
    p.add_argument("program")
    common_run_flags(p)
    p.add_argument("--verbose", action="store_true",
                   help="dump the decoded instruction stream")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("coverage",
                       help="statement/branch coverage from PT traces")
    p.add_argument("program")
    common_run_flags(p)
    p.add_argument("--runs", type=int, default=1,
                   help="accumulate coverage over N runs")
    p.set_defaults(func=cmd_coverage)

    p = sub.add_parser("slice", help="print the backward slice from a uid")
    p.add_argument("program")
    p.add_argument("uid", type=int)
    p.set_defaults(func=cmd_slice)

    def positive_int(value: str) -> int:
        n = int(value)
        if n < 1:
            raise argparse.ArgumentTypeError("must be a positive integer")
        return n

    def fault_plan(value: str):
        from .fleet import parse_fault_plan

        try:
            return parse_fault_plan(value)
        except ValueError as err:
            raise argparse.ArgumentTypeError(str(err))

    def fleet_flags(p):
        p.add_argument("--fleet-workers", type=positive_int, default=1,
                       help="concurrent client runs per fleet batch "
                            "(results are deterministic for any value)")
        p.add_argument("--executor",
                       choices=("serial", "threads", "processes"),
                       default="threads",
                       help="execution engine for client runs: 'serial', "
                            "'threads' (default), or 'processes' (warm "
                            "worker pool — true parallelism; results are "
                            "byte-identical across engines)")
        p.add_argument("--jobs", type=positive_int, default=None,
                       metavar="N",
                       help="worker count for the chosen engine "
                            "(overrides --fleet-workers)")
        p.add_argument("--cache-dir", default=None,
                       help="directory for the on-disk analysis-artifact "
                            "cache (repeat invocations skip cold analysis)")
        p.add_argument("--fleet-transport",
                       choices=("wire", "socket", "direct"),
                       default="wire",
                       help="'wire' (encoded-bytes fleet transport, "
                            "default), 'socket' (the same bytes over a "
                            "real Unix socket with batching and "
                            "backpressure), or 'direct' (in-process "
                            "hand-off)")
        p.add_argument("--fault-plan", type=fault_plan, default=None,
                       metavar="SPEC",
                       help="inject transport/client/server faults: "
                            "'lossy', 'lossy:SEED', or 'drop=0.05,"
                            "corrupt=0.02,crashes=1,server_crash_every=40,"
                            "ack_delay=0.1,seed=7' (wire-like transports "
                            "only; server_crash_every needs --journal-dir)")
        p.add_argument("--journal-dir", default=None, metavar="DIR",
                       help="write-ahead campaign journal directory: every "
                            "campaign transition is journaled before apply "
                            "so a killed server resumes mid-campaign")
        p.add_argument("--batch-bytes", type=positive_int, default=None,
                       metavar="N",
                       help="socket transport: coalesce up to N payload "
                            "bytes per write (default 262144)")
        p.add_argument("--batch-ms", type=float, default=None,
                       metavar="MS",
                       help="socket transport: linger up to MS ms filling "
                            "a batch before writing (default 0)")

    def detect_flags(p):
        from .detect.invariants import RANKER_KINDS

        p.add_argument("--detectors", default=None, metavar="KINDS",
                       help="comma-separated detection tracers to attach "
                            "to every endpoint run: 'races' (happens-"
                            "before data-race detector), 'nullorigin' "
                            "(null-origin causality tracer), or 'none'; "
                            "corpus bugs default to their declared "
                            "detectors")
        p.add_argument("--ranker", choices=RANKER_KINDS,
                       default="fmeasure",
                       help="predictor ranking engine: 'fmeasure' (the "
                            "paper's F-measure, default) or 'invariants' "
                            "(error-invariant recall x specificity)")
        p.add_argument("--stats", choices=STATS_KINDS, default="exact",
                       help="statistics mode: 'exact' (reference; holds "
                            "every run, default) or 'streaming' (bounded "
                            "memory — sketched ranking, rolling-window "
                            "F-measures, client-side evidence slicing)")

    def control_flags(p):
        from .control import SCHEDULER_KINDS

        p.add_argument("--shards", type=positive_int, default=1,
                       help="control-plane shard servers; campaigns are "
                            "consistent-hashed onto shards by failure-"
                            "cluster key (1 = classic single-server path)")
        p.add_argument("--cohort-size", type=positive_int, default=1,
                       metavar="K",
                       help="each simulated endpoint stands in for K real "
                            "clients; recurrence/predictor counts are "
                            "weighted by cohort multiplicity")
        p.add_argument("--cohort-share", type=float, default=1.0,
                       help="fraction of each cohort participating per "
                            "run (1.0 = whole cohort, ranking-invariant)")
        p.add_argument("--scheduler", choices=SCHEDULER_KINDS,
                       default="infogain",
                       help="per-round fleet-budget policy: 'infogain' "
                            "(weight by expected evidence; starve "
                            "converged campaigns) or 'fair' (even split)")
        p.add_argument("--quantum", type=positive_int, default=8,
                       help="runs each endpoint affords per scheduler "
                            "round (round budget = endpoints x quantum)")

    p = sub.add_parser("diagnose",
                       help="run a full Gist campaign on a program")
    p.add_argument("program")
    common_run_flags(p)
    p.add_argument("--bug", default=None, help="bug name for the sketch")
    p.add_argument("--endpoints", type=int, default=4)
    fleet_flags(p)
    control_flags(p)
    detect_flags(p)
    p.add_argument("--sigma", type=int, default=2,
                   help="initial AsT window (paper default: 2)")
    p.add_argument("--max-iterations", type=int, default=6)
    p.add_argument("--html", default=None, help="export sketch as HTML")
    p.add_argument("--json", default=None, help="export sketch as JSON")
    p.add_argument("--ptwrite", action="store_true",
                   help="future-hardware mode: data flow rides in the PT "
                        "stream, no watchpoints (paper section 6)")
    p.set_defaults(func=cmd_diagnose)

    p = sub.add_parser("corpus", help="work with the 11-bug corpus")
    csub = p.add_subparsers(dest="corpus_command", required=True)
    cp = csub.add_parser("list", help="list the corpus bugs")
    cp.add_argument("--kind", default=None, metavar="FAILURE_KIND",
                    help="only bugs of this failure class (e.g. "
                         "'data race', 'null dereference', 'segfault')")
    cp.set_defaults(func=cmd_corpus)
    cp = csub.add_parser("show", help="print a bug's source + ideal sketch")
    cp.add_argument("bug_id")
    cp.set_defaults(func=cmd_corpus)
    cp = csub.add_parser("diagnose", help="run a campaign on a corpus bug")
    cp.add_argument("bug_id")
    interp_flag(cp)
    cp.add_argument("--endpoints", type=int, default=4)
    cp.add_argument("--max-iterations", type=int, default=6)
    cp.add_argument("--html", default=None)
    cp.add_argument("--json", default=None)
    fleet_flags(cp)
    detect_flags(cp)
    cp.set_defaults(func=cmd_corpus)
    cp = csub.add_parser("campaign",
                         help="run several corpus bugs as concurrent "
                              "campaigns over one shared fleet")
    cp.add_argument("bug_ids", nargs="+",
                    help="corpus bug ids (or the single word 'all')")
    interp_flag(cp)
    cp.add_argument("--endpoints", type=int, default=4)
    cp.add_argument("--max-iterations", type=int, default=6)
    cp.add_argument("--show-sketches", action="store_true",
                    help="print every campaign's failure sketch")
    fleet_flags(cp)
    control_flags(cp)
    detect_flags(cp)
    cp.set_defaults(func=cmd_corpus)

    p = sub.add_parser("fleet",
                       help="run server and fleet clients as separate OS "
                            "processes over a real socket")
    fsub = p.add_subparsers(dest="fleet_command", required=True)

    def fleet_proc_flags(fp):
        fp.add_argument("bug_id", help="corpus bug id to diagnose")
        fp.add_argument("--socket", required=True, metavar="ADDR",
                        help="unix:/path, tcp:HOST:PORT, or a bare Unix "
                             "socket path")
        fp.add_argument("--timeout", type=float, default=300.0,
                        help="overall wall-clock budget in seconds")
        fp.add_argument("--batch-messages", type=positive_int, default=256,
                        help="coalesce up to N envelopes per socket write "
                             "(1 = unbatched)")
        fp.add_argument("--batch-bytes", type=positive_int, default=None,
                        metavar="N", help="batch payload-byte cap")
        fp.add_argument("--batch-ms", type=float, default=None,
                        metavar="MS", help="batch linger window in ms")

    fp = fsub.add_parser("serve",
                         help="host the GistServer behind a socket")
    fleet_proc_flags(fp)
    fp.add_argument("--journal-dir", default=None, metavar="DIR",
                    help="write-ahead journal directory; restart on the "
                         "same journal to resume after a kill")
    fp.add_argument("--sigma", type=int, default=2)
    fp.add_argument("--max-iterations", type=int, default=10)
    fp.set_defaults(func=cmd_fleet)

    fp = fsub.add_parser("client",
                         help="run N fleet endpoints against a server")
    fleet_proc_flags(fp)
    fp.add_argument("--endpoints", type=positive_int, default=2,
                    help="endpoints this client process simulates")
    fp.add_argument("--base", type=int, default=0,
                    help="first endpoint id (processes must not overlap)")
    fp.set_defaults(func=cmd_fleet)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
