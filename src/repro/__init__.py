"""repro: a reproduction of Failure Sketching (Gist, SOSP 2015).

Top-level convenience re-exports; the subpackages are the real API surface:

- :mod:`repro.lang` — MiniC frontend + GIR
- :mod:`repro.analysis` — slicing and friends
- :mod:`repro.runtime` — the execution substrate
- :mod:`repro.pt` / :mod:`repro.hw` — the hardware simulators
- :mod:`repro.instrument` — patch planning/application
- :mod:`repro.core` — Gist itself
- :mod:`repro.fleet` — wire transport, fault injection, execution engines
- :mod:`repro.control` — sharded multi-campaign control plane
- :mod:`repro.replay` — the record/replay baseline
- :mod:`repro.corpus` — the 11-bug evaluation corpus
"""

from .core import Gist, Workload
from .lang import compile_source

__version__ = "1.0.0"

__all__ = ["Gist", "Workload", "compile_source", "__version__"]
