"""Budget-aware scheduling of fleet runs across competing campaigns.

Every endpoint can afford only so much instrumentation per unit time (the
paper's "low overhead" constraint), so when several diagnosis campaigns
want monitored runs from the same fleet, *someone* has to decide whose
patches ride on the next round of production runs.  The
:class:`BudgetScheduler` makes that call each round:

- The fleet offers ``endpoints * quantum`` client runs per round — the
  hard per-round budget; allocations never sum past it, so no client ever
  executes more than ``quantum`` runs per round.
- ``infogain`` (default) apportions runs by a campaign's **expected
  information gain** per run: a campaign still bootstrapping needs runs
  just to see its failure once (floor weight); an unconverged campaign
  whose failure recurs often yields the most evidence per monitored run
  (weight grows with observed recurrences); a converged or finished
  campaign yields nothing and is starved to zero — its fleet share is
  immediately recycled to the stragglers.
- ``fair`` splits the round evenly across active campaigns — the control
  baseline the benchmark compares against.

Allocation is largest-remainder apportionment with deterministic
(campaign-key) tie-breaking, so a given set of campaign states always
yields the same split regardless of dict ordering.
"""

from __future__ import annotations

from typing import Dict, Mapping

SCHEDULER_KINDS = ("infogain", "fair")


class BudgetScheduler:
    """Per-round run-budget allocator (see module docstring)."""

    def __init__(self, kind: str = "infogain", endpoints: int = 8,
                 quantum: int = 8) -> None:
        if kind not in SCHEDULER_KINDS:
            raise ValueError(f"scheduler must be one of {SCHEDULER_KINDS}")
        if endpoints < 1 or quantum < 1:
            raise ValueError("need positive endpoints and quantum")
        self.kind = kind
        self.endpoints = endpoints
        self.quantum = quantum

    @property
    def round_budget(self) -> int:
        """Runs the fleet offers per round: ``endpoints * quantum``."""
        return self.endpoints * self.quantum

    # -- policy --------------------------------------------------------------

    def weight(self, driver) -> float:
        """Expected-information-gain proxy for one campaign driver.

        Duck-typed over :class:`~repro.core.cooperative.CampaignDriver`:
        ``done``/``converged`` flags plus the weighted ``recurrences()``
        demand signal.  In streaming-statistics mode that signal is the
        campaign's *rolling-window* recurrence count rather than its
        all-time total, so infogain budget follows the bugs currently hot
        in the fleet instead of historical volume.
        """
        if driver.done or driver.converged:
            return 0.0
        if self.kind == "fair":
            return 1.0
        # infogain: bootstrap floor of 1; afterwards 1 + recurrences —
        # the hotter the bug, the more evidence each monitored run buys.
        return 1.0 + float(driver.recurrences())

    def allocate(self, drivers: Mapping[str, object]) -> Dict[str, int]:
        """Split this round's budget across campaigns by key.

        Guarantees: allocations are non-negative, sum to at most
        :attr:`round_budget`, zero for finished/converged campaigns, and
        at least 1 for every active campaign the budget can cover (a
        starving campaign could otherwise never finish bootstrapping).
        """
        weights = {key: self.weight(driver)
                   for key, driver in drivers.items()}
        budget = self.round_budget
        alloc = {key: 0 for key in weights}
        active = sorted(key for key, w in weights.items() if w > 0.0)
        if not active or budget <= 0:
            return alloc
        total = sum(weights[key] for key in active)
        shares = {key: budget * weights[key] / total for key in active}
        for key in active:
            alloc[key] = int(shares[key])
        leftover = budget - sum(alloc[key] for key in active)
        # Largest remainder first; ties broken by key so the split is a
        # pure function of the campaign states.
        for key in sorted(active,
                          key=lambda k: (-(shares[k] - int(shares[k])), k)):
            if leftover <= 0:
                break
            alloc[key] += 1
            leftover -= 1
        # Participation floor: every active campaign gets >= 1 when the
        # round is big enough, taken from the current largest allocation.
        if budget >= len(active):
            for key in active:
                if alloc[key] > 0:
                    continue
                donor = max(active, key=lambda k: (alloc[k], k))
                if alloc[donor] <= 1:
                    break
                alloc[donor] -= 1
                alloc[key] = 1
        assert sum(alloc.values()) <= budget
        return alloc
