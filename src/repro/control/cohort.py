"""Cohort clients: one endpoint standing in for K real clients.

The paper's evaluation simulates 1,136 endpoints by actually running
1,136 clients; at the 100k–1M scale WER-style deployments operate at,
that is hopeless.  A :class:`CohortModel` lets each simulated endpoint
represent a *cohort* of K real clients: the endpoint executes one
representative run and reports that ``m ∈ [1, K]`` cohort members
exhibited the same outcome.  The server folds ``m`` into recurrence
totals and predictor counts as a weight
(:meth:`PredictorRanker.add_run <repro.core.stats.PredictorRanker.add_run>`).

Why this is statistically honest:

- With ``share = 1.0`` (the default) every run reports exactly ``m = K``.
  Every predictor count and total is scaled by the same constant, and the
  F-measure is invariant under uniform scaling of the contingency table —
  precision ``F/(F+S)`` and recall ``F/total_F`` both cancel the factor K
  — so rankings, sketches, and convergence decisions are *identical* to
  the unweighted campaign.  This is the degenerate case the A/B tests
  pin down.
- With ``share < 1`` the multiplicity is a sampled binomial
  ``B(K, share)`` (normal approximation, clamped to ``[1, K]``) modelling
  partial cohort participation per run.

Determinism: ``m`` is a pure SHA-256 function of ``(seed, campaign_key,
endpoint_id, run_id)`` — never an RNG stream — so every execution engine,
shard count, and scheduler interleaving sees the same multiplicities.
The model is evaluated main-side in
:meth:`FleetEndpoint.plan_run <repro.fleet.endpoint.FleetEndpoint.plan_run>`
and the result rides to workers inside the
:class:`~repro.fleet.executors.RunJob` descriptor; outcomes never feed
back into it (a failing run and a successful run at the same position get
the same weight, so weighting cannot bias the failure/success ratio).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass


def _unit(seed: int, *key) -> float:
    """Deterministic uniform float in [0, 1) keyed by ``(seed, *key)``."""
    material = repr((seed,) + key).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


@dataclass(frozen=True)
class CohortModel:
    """Multiplicity model for cohort endpoints (see module docstring)."""

    #: Real clients per simulated endpoint (K).  1 = ordinary fleet.
    size: int = 1
    #: Fraction of the cohort participating in any one run.  1.0 means the
    #: whole cohort (exact weight K, ranking-invariant); < 1 samples
    #: ``B(K, share)`` per run.
    share: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("cohort size must be >= 1")
        if not (0.0 < self.share <= 1.0):
            raise ValueError("cohort share must be in (0, 1]")

    def multiplicity(self, campaign_key: str, endpoint_id: int,
                     run_id: int) -> int:
        """How many real clients this run stands for — pure and seeded."""
        if self.size <= 1:
            return 1
        if self.share >= 1.0:
            return self.size
        mean = self.size * self.share
        stddev = math.sqrt(self.size * self.share * (1.0 - self.share))
        # Box-Muller over two hash-derived uniforms; u1 nudged off zero.
        u1 = _unit(self.seed, "cohort-u1", campaign_key, endpoint_id,
                   run_id) or 2.0 ** -64
        u2 = _unit(self.seed, "cohort-u2", campaign_key, endpoint_id,
                   run_id)
        gauss = math.sqrt(-2.0 * math.log(u1)) * \
            math.cos(2.0 * math.pi * u2)
        sampled = int(round(mean + stddev * gauss))
        return max(1, min(self.size, sampled))

    def fleet_scale(self, endpoints: int) -> int:
        """How many real clients a fleet of ``endpoints`` cohorts models."""
        return endpoints * self.size
