"""The multi-campaign control plane.

A :class:`ControlPlane` runs N diagnosis campaigns *concurrently* over a
shared fleet.  Each campaign is one
:class:`~repro.core.cooperative.CampaignDriver` — the resumable AsT state
machine — and the plane's job is everything between them:

- **Scheduling.**  Each round the
  :class:`~repro.control.scheduler.BudgetScheduler` splits the fleet's
  per-round run budget (``endpoints x quantum``) across unconverged
  campaigns by expected information gain, and the plane steps every
  driver by exactly its allocation.  Budgeted stepping consumes the same
  run stream an unbudgeted campaign would (batch-size invariance, see the
  driver), so concurrency changes *when* evidence arrives, never *what*
  evidence arrives — the degenerate A/B tests pin sketches byte-identical
  to solo runs.
- **Sharding.**  Once a campaign sees its first failure, its
  failure-cluster key (the WER-style site key) is consistent-hashed onto
  one of the plane's :class:`~repro.control.shard.ShardServer` instances,
  which owns the campaign from then on.  Campaign ingest stripes its
  ranker counts (one stripe per shard); shard state — striped ranker
  snapshots plus the cluster table — is exported as canonical
  ``shard_state`` wire envelopes and folded into the plane's global view
  with :meth:`PredictorRanker.merge
  <repro.core.stats.PredictorRanker.merge>` and
  :meth:`FailureClusterer.merge
  <repro.core.clustering.FailureClusterer.merge>`, both
  order-independent, so the global view is invariant under shard count.
- **Cohorts.**  With ``cohort_size`` K > 1 every simulated endpoint
  stands in for K real clients
  (:class:`~repro.control.cohort.CohortModel`), so a small fleet models
  100k–1M endpoints at the cost of the small one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.context import AnalysisContext
from ..core.adaptive import DEFAULT_SIGMA
from ..core.clustering import FailureClusterer
from ..core.cooperative import CampaignDriver, CampaignStats, \
    CooperativeDeployment, StopPredicate
from ..core.stats import PredictorRanker
from ..core.streaming import STATS_KINDS, ranker_from_state
from ..fleet import wire
from ..fleet.executors import FleetExecutor, make_executor
from ..fleet.faults import FaultPlan
from ..lang.ir import Module
from .cohort import CohortModel
from .hashring import ConsistentHashRing
from .scheduler import BudgetScheduler
from .shard import ShardServer


@dataclass(frozen=True)
class CampaignSpec:
    """One bug the plane should diagnose: program, workloads, oracle."""

    bug: str
    module: Module
    workload_factory: Callable
    stop_when: Optional[StopPredicate] = None
    context: Optional[AnalysisContext] = None
    #: Detection tracers (:data:`repro.detect.DETECTOR_KINDS` names) every
    #: endpoint run of this campaign attaches.
    detectors: Sequence[str] = ()


@dataclass
class PlaneResult:
    """What a finished control-plane run reports."""

    #: Per-campaign outcome, keyed by campaign (bug) id.
    stats: Dict[str, CampaignStats] = field(default_factory=dict)
    #: Failure-cluster key -> owning shard id.
    shard_of: Dict[str, int] = field(default_factory=dict)
    #: Campaign id -> its failure-cluster (site) key.
    cluster_key_of: Dict[str, str] = field(default_factory=dict)
    rounds: int = 0
    #: Physical client runs executed, per campaign and total.
    runs_of: Dict[str, int] = field(default_factory=dict)
    total_runs: int = 0
    #: Largest per-round run total — never exceeds the round budget.
    max_round_runs: int = 0
    round_budget: int = 0
    #: Real clients the fleet models (endpoints x cohort size).
    fleet_scale: int = 0
    #: Globally merged cluster table (via shard_state envelopes).
    clusters: Optional[FailureClusterer] = None
    #: True when every campaign's cross-shard merged ranker matched its
    #: own direct ranker state exactly.
    merge_verified: bool = False
    wall_seconds: float = 0.0

    @property
    def found(self) -> Dict[str, bool]:
        return {key: s.found for key, s in self.stats.items()}


class ControlPlane:
    """Drives N concurrent campaigns over shared fleet capacity."""

    def __init__(self, specs: Sequence[CampaignSpec],
                 shards: int = 1,
                 endpoints: int = 8,
                 cohort_size: int = 1,
                 cohort_share: float = 1.0,
                 cohort_seed: int = 0,
                 scheduler: str = "infogain",
                 quantum: int = 8,
                 fleet_workers: int = 1,
                 executor: str = "threads",
                 engine: Optional[FleetExecutor] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 transport: str = "wire",
                 journal_dir: Optional[str] = None,
                 interp_mode: Optional[str] = None,
                 ptwrite: bool = False,
                 extended_predicates: bool = False,
                 initial_sigma: int = DEFAULT_SIGMA,
                 max_iterations: int = 10,
                 min_failing_per_iteration: int = 1,
                 min_successful_per_iteration: int = 3,
                 max_runs_per_iteration: int = 400,
                 max_bootstrap_runs: int = 10_000,
                 ranker: str = "fmeasure",
                 stats: str = "exact") -> None:
        if not specs:
            raise ValueError("need at least one campaign spec")
        if shards < 1:
            raise ValueError("need at least one shard")
        if stats not in STATS_KINDS:
            raise ValueError(f"stats must be one of {STATS_KINDS}")
        keys = [spec.bug for spec in specs]
        if len(set(keys)) != len(keys):
            raise ValueError("campaign ids must be unique")
        self.specs = list(specs)
        self.ring = ConsistentHashRing(shards)
        self.stats_kind = stats
        self.shards = [ShardServer(i, stats=stats) for i in range(shards)]
        self.scheduler = BudgetScheduler(scheduler, endpoints=endpoints,
                                         quantum=quantum)
        self.cohort = CohortModel(size=cohort_size, share=cohort_share,
                                  seed=cohort_seed) \
            if cohort_size > 1 else None
        self.endpoints = endpoints
        self._engine = engine
        self._owns_engine = engine is None
        if self._engine is None:
            self._engine = make_executor(executor, fleet_workers)
        self.drivers: Dict[str, CampaignDriver] = {}
        self._unassigned: Dict[str, CampaignDriver] = {}
        for spec in self.specs:
            deployment = CooperativeDeployment(
                spec.module, spec.workload_factory,
                endpoints=endpoints, bug=spec.bug,
                ptwrite=ptwrite, extended_predicates=extended_predicates,
                context=spec.context, fleet_workers=fleet_workers,
                engine=self._engine, transport=transport,
                fault_plan=fault_plan, interp_mode=interp_mode,
                campaign_key=spec.bug, cohort_model=self.cohort,
                ranker_stripes=shards, journal_dir=journal_dir,
                detectors=spec.detectors, ranker=ranker, stats=stats)
            driver = CampaignDriver(
                deployment, initial_sigma=initial_sigma,
                stop_when=spec.stop_when,
                max_iterations=max_iterations,
                min_failing_per_iteration=min_failing_per_iteration,
                min_successful_per_iteration=min_successful_per_iteration,
                max_runs_per_iteration=max_runs_per_iteration,
                max_bootstrap_runs=max_bootstrap_runs)
            self.drivers[spec.bug] = driver
            self._unassigned[spec.bug] = driver

    # -- shard assignment ----------------------------------------------------

    def _assign_new_campaigns(self, result: PlaneResult) -> None:
        """Home campaigns that just produced their first failure report."""
        for key in sorted(self._unassigned):
            driver = self._unassigned[key]
            if driver.campaign is None:
                continue
            report = driver.campaign.first_report
            cluster_key = FailureClusterer.site_key(report)
            shard = self.shards[self.ring.lookup(cluster_key)]
            shard.admit(key, driver)
            shard.observe_failure(report)
            result.cluster_key_of[key] = cluster_key
            result.shard_of[cluster_key] = shard.shard_id
            del self._unassigned[key]

    # -- the cooperative round loop ------------------------------------------

    def run(self) -> PlaneResult:
        """Drive every campaign to completion; merge the global view."""
        result = PlaneResult(round_budget=self.scheduler.round_budget,
                             fleet_scale=self.endpoints * (
                                 self.cohort.size if self.cohort else 1))
        result.runs_of = {key: 0 for key in self.drivers}
        t0 = time.perf_counter()
        try:
            while any(not d.done for d in self.drivers.values()):
                alloc = self.scheduler.allocate(self.drivers)
                round_runs = 0
                for key in sorted(alloc):
                    budget = alloc[key]
                    if budget <= 0:
                        continue
                    consumed = self.drivers[key].step(budget)
                    assert consumed <= budget, \
                        "driver exceeded its scheduled budget"
                    result.runs_of[key] += consumed
                    round_runs += consumed
                self._assign_new_campaigns(result)
                result.rounds += 1
                result.max_round_runs = max(result.max_round_runs,
                                            round_runs)
            self._merge_global_view(result)
        finally:
            result.wall_seconds = time.perf_counter() - t0
            for driver in self.drivers.values():
                driver.dep.close()
            if self._owns_engine:
                self._engine.close()
        for key, driver in self.drivers.items():
            result.stats[key] = driver.stats
        result.total_runs = sum(result.runs_of.values())
        return result

    # -- cross-shard merge ---------------------------------------------------

    def _merge_global_view(self, result: PlaneResult) -> None:
        """Fold every shard's exported state into the plane-global view.

        The exchange is real wire traffic: each shard encodes one
        ``shard_state`` envelope (canonical bytes, content digest) and the
        plane decodes it back — a corrupted export would raise, exactly
        like corrupted fleet traffic.  Every campaign's striped partial
        rankers are then folded with :meth:`PredictorRanker.merge` and
        checked against the campaign's own merged ranker; associativity/
        commutativity of the merge is what makes this independent of
        shard count and export order.
        """
        clusters = FailureClusterer()
        verified = True
        for shard in self.shards:
            message = wire.decode_message(shard.export_state())
            assert message.type == wire.MSG_SHARD_STATE
            body = message.payload
            clusters.merge(FailureClusterer.from_state(body["clusters"]))
            for entry in body["campaigns"]:
                merged: Optional[PredictorRanker] = None
                for stripe_state in entry["stripes"]:
                    # Dispatch on the state's "kind": sketched stripes
                    # (streaming mode) rebuild as SketchRankers so the
                    # fold exercises mergeable-summaries merge; exact
                    # stripes take the classic path unchanged.
                    partial = ranker_from_state(stripe_state)
                    if merged is None:
                        merged = partial
                    else:
                        merged.merge(partial)
                driver = self.drivers[entry["key"]]
                direct = driver.campaign.ranker().state()
                if merged is None or merged.state() != direct:
                    verified = False
        result.clusters = clusters
        result.merge_verified = verified

    # -- convenience ---------------------------------------------------------

    def active_campaigns(self) -> List[str]:
        return [key for key, d in self.drivers.items() if not d.done]
