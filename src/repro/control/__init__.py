"""Sharded multi-campaign control plane.

One in-production fleet rarely has the luxury of chasing a single bug at a
time: failures from many sites arrive together, and every endpoint has a
fixed instrumentation budget (§3.1's "low overhead" constraint caps how
many watchpoints and hooks a client may carry).  This package adds the
layer the paper's single-campaign pipeline leaves implicit:

- :class:`~repro.control.plane.ControlPlane` — owns N concurrent
  diagnosis campaigns, consistent-hashes their failure-cluster keys across
  shard servers, and merges per-shard cluster and predictor state through
  the canonical wire/digest path;
- :class:`~repro.control.scheduler.BudgetScheduler` — allocates each
  round's fleet run budget across competing campaigns by expected
  information gain (unconverged + high-recurrence campaigns first,
  converged campaigns starved);
- :class:`~repro.control.cohort.CohortModel` — one simulated endpoint
  stands in for K real clients, folding sampled multiplicities into the
  ranker counts so 100k–1M-endpoint fleets are cheap to model;
- :class:`~repro.control.hashring.ConsistentHashRing` — the key→shard
  mapping, stable under shard-count changes in the usual 1/N way.
"""

from .cohort import CohortModel
from .hashring import ConsistentHashRing
from .plane import CampaignSpec, ControlPlane, PlaneResult
from .scheduler import SCHEDULER_KINDS, BudgetScheduler
from .shard import ShardServer

__all__ = [
    "BudgetScheduler",
    "CampaignSpec",
    "CohortModel",
    "ConsistentHashRing",
    "ControlPlane",
    "PlaneResult",
    "SCHEDULER_KINDS",
    "ShardServer",
]
