"""Consistent hashing of campaign keys onto shard servers.

The classic ring: each shard owns a set of virtual points on a 64-bit
circle; a key maps to the first shard point clockwise from the key's own
hash.  Virtual nodes smooth the load split, and consistency means a shard
added or removed moves only ~1/N of the keys — the property that lets a
deployment grow its control plane without re-homing every campaign.

All hashing is SHA-256 over explicit strings, never Python's per-process
``hash()``, so the key→shard map is identical across interpreter runs,
worker processes, and machines.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Tuple


def _point(material: str) -> int:
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """Maps string keys to shard ids ``0..shards-1`` deterministically."""

    def __init__(self, shards: int, vnodes: int = 64) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        if vnodes < 1:
            raise ValueError("need at least one virtual node per shard")
        self.shards = shards
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for vnode in range(vnodes):
                points.append((_point(f"shard-{shard}/vnode-{vnode}"),
                               shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def lookup(self, key: str) -> int:
        """The shard owning ``key``."""
        if self.shards == 1:
            return 0
        index = bisect.bisect_right(self._points, _point(f"key/{key}"))
        if index == len(self._points):
            index = 0  # wrap around the circle
        return self._owners[index]

    def assignment(self, keys) -> Dict[str, int]:
        """Bulk ``key -> shard`` mapping."""
        return {key: self.lookup(key) for key in keys}
