"""One shard of the control plane: a campaign-agnostic campaign host.

A :class:`ShardServer` owns the diagnosis campaigns whose failure-cluster
keys hash to it.  It is deliberately thin: each campaign keeps its own
:class:`~repro.core.server.GistServer` and
:class:`~repro.core.cooperative.CampaignDriver` (campaigns are isolated —
one bug's traffic can never perturb another's statistics), and the shard
contributes the parts that *must* aggregate across campaigns:

- the WER-style failure-report clusterer for its slice of the key space;
- the exportable shard state — per-campaign striped ranker snapshots plus
  the cluster table — encoded as a canonical ``shard_state`` wire
  envelope, so cross-shard merging at the control plane rides the exact
  digest-checked path fleet traffic does.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.clustering import DEFAULT_MAX_IDENTITIES, FailureClusterer
from ..core.cooperative import CampaignDriver
from ..fleet import wire


class ShardServer:
    """Hosts the campaigns hashed to one shard (see module docstring).

    ``stats`` mirrors the campaigns' statistics mode: ``"streaming"``
    bounds the shard clusterer's per-bucket identity histograms
    (:data:`~repro.core.clustering.DEFAULT_MAX_IDENTITIES`) so shard state
    stays O(buckets) at million-report scale; ``"exact"`` keeps the
    unbounded reference behaviour and byte-identical exports.
    """

    def __init__(self, shard_id: int, stats: str = "exact") -> None:
        self.shard_id = shard_id
        self.drivers: Dict[str, CampaignDriver] = {}
        self.clusterer = FailureClusterer(
            max_identities=DEFAULT_MAX_IDENTITIES
            if stats == "streaming" else None)

    def admit(self, key: str, driver: CampaignDriver) -> None:
        """Take ownership of one campaign."""
        if key in self.drivers:
            raise ValueError(f"campaign {key!r} already on shard "
                             f"{self.shard_id}")
        self.drivers[key] = driver

    def observe_failure(self, report) -> None:
        """Cluster one failure report from this shard's key slice."""
        self.clusterer.add(report)

    def campaign_keys(self) -> List[str]:
        return sorted(self.drivers)

    def active(self) -> List[str]:
        return [key for key in self.campaign_keys()
                if not self.drivers[key].done]

    # -- state export --------------------------------------------------------

    def export_state(self, epoch: Optional[int] = None) -> bytes:
        """This shard's mergeable state as one ``shard_state`` envelope.

        Campaigns still bootstrapping (no failure yet) export nothing —
        they have no ranker to merge.  Stripe snapshots are exported
        *unmerged*; the control plane folds them with
        :meth:`PredictorRanker.merge
        <repro.core.stats.PredictorRanker.merge>`, whose associativity and
        commutativity are what make the global view independent of shard
        count and merge order.
        """
        campaigns = []
        for key in self.campaign_keys():
            driver = self.drivers[key]
            campaign = driver.campaign
            if campaign is None:
                continue
            campaigns.append({
                "key": key,
                "bug": driver.dep.bug,
                "recurrences": campaign.total_failure_recurrences,
                "stripes": campaign.stripe_states(),
            })
        return wire.encode_shard_state(self.shard_id, campaigns,
                                       self.clusterer.state(), epoch=epoch)
