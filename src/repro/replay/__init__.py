"""Record/replay baseline (Mozilla rr analogue, for Fig. 13)."""

from .log import BehaviorDigest, RecordLog
from .recorder import Recorder, record
from .replayer import ReplayDivergence, ReplayResult, replay

__all__ = [
    "BehaviorDigest",
    "RecordLog",
    "Recorder",
    "ReplayDivergence",
    "ReplayResult",
    "record",
    "replay",
]
