"""Deterministic replay from a :class:`~repro.replay.log.RecordLog`.

Replays re-execute the program under a :class:`FixedScheduler` built from
the recorded schedule, then verify the behaviour digest: same step count,
same stdout, same failure (by identity).  A mismatch raises
:class:`ReplayDivergence` — record/replay systems treat divergence as a
recorder bug, and so do our tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.ir import Module
from ..runtime.failures import RunOutcome
from ..runtime.interpreter import Interpreter
from ..runtime.scheduler import FixedScheduler
from .log import BehaviorDigest, RecordLog


class ReplayDivergence(Exception):
    """The replay did not match the recorded behaviour digest."""
    pass


@dataclass
class ReplayResult:
    """Outcome of a replay plus whether the digest matched."""
    outcome: RunOutcome
    matched: bool
    detail: str = ""


def replay(module: Module, log: RecordLog,
           verify: bool = True, max_steps: int = 2_000_000) -> ReplayResult:
    """Re-execute a recorded run and (optionally) verify the digest."""
    if log.program and log.program != module.name:
        raise ReplayDivergence(
            f"log is for {log.program!r}, module is {module.name!r}")
    scheduler = FixedScheduler(log.schedule)
    interp = Interpreter(module, entry=log.entry, args=list(log.args),
                         scheduler=scheduler, max_steps=max_steps)
    outcome = interp.run()
    if not verify or log.digest is None:
        return ReplayResult(outcome=outcome, matched=True,
                            detail="not verified")
    mismatches = _compare(outcome, log.digest)
    if mismatches:
        detail = "; ".join(mismatches)
        raise ReplayDivergence(f"replay diverged: {detail}")
    return ReplayResult(outcome=outcome, matched=True)


def _compare(outcome: RunOutcome, digest: BehaviorDigest) -> list:
    problems = []
    if outcome.steps != digest.steps:
        problems.append(f"steps {outcome.steps} != {digest.steps}")
    got_stdout = BehaviorDigest.hash_stdout(outcome.stdout)
    if got_stdout != digest.stdout_hash:
        problems.append("stdout differs")
    if outcome.failed != digest.failed:
        problems.append(f"failed {outcome.failed} != {digest.failed}")
    got_identity = outcome.failure.identity() if outcome.failure else ""
    if got_identity != digest.failure_identity:
        problems.append("failure identity differs")
    if not outcome.failed and outcome.exit_value != digest.exit_value:
        problems.append(
            f"exit {outcome.exit_value} != {digest.exit_value}")
    return problems
