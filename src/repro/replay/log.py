"""Record/replay log format.

The baseline recorder (a Mozilla-rr analogue, used by Fig. 13) captures
everything needed to re-execute a run deterministically:

- the program inputs,
- the full thread schedule (run-length encoded ``(tid, steps)`` pairs),
- a digest of observable behaviour (steps, stdout, failure identity) the
  replayer checks itself against.

Our interpreter is deterministic given inputs + schedule, so this log is
*sufficient* for faithful replay — the same property real record/replay
systems obtain by recording syscall results and scheduling decisions.  The
cost model charges the recorder for every retired instruction and every
memory access, which is where the ~10× overhead of software record/replay
comes from.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

ArgValue = Union[int, str]


@dataclass
class BehaviorDigest:
    """What must match between a recording and its replay."""

    steps: int
    stdout_hash: str
    failed: bool
    failure_identity: str = ""
    exit_value: int = 0

    @staticmethod
    def hash_stdout(lines: Sequence[str]) -> str:
        h = hashlib.sha256()
        for line in lines:
            h.update(line.encode())
            h.update(b"\n")
        return h.hexdigest()[:16]


@dataclass
class RecordLog:
    """One recorded execution."""

    program: str
    args: Tuple[ArgValue, ...] = ()
    entry: str = "main"
    schedule: List[Tuple[int, int]] = field(default_factory=list)  # RLE
    digest: Optional[BehaviorDigest] = None
    mem_events: int = 0
    sync_events: int = 0

    def append_step(self, tid: int) -> None:
        if self.schedule and self.schedule[-1][0] == tid:
            last_tid, count = self.schedule[-1]
            self.schedule[-1] = (last_tid, count + 1)
        else:
            self.schedule.append((tid, 1))

    def total_steps(self) -> int:
        return sum(count for _tid, count in self.schedule)

    # -- serialization -----------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "program": self.program,
            "args": list(self.args),
            "entry": self.entry,
            "schedule": self.schedule,
            "mem_events": self.mem_events,
            "sync_events": self.sync_events,
            "digest": None,
        }
        if self.digest is not None:
            payload["digest"] = {
                "steps": self.digest.steps,
                "stdout_hash": self.digest.stdout_hash,
                "failed": self.digest.failed,
                "failure_identity": self.digest.failure_identity,
                "exit_value": self.digest.exit_value,
            }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "RecordLog":
        payload = json.loads(text)
        digest = None
        if payload.get("digest"):
            d = payload["digest"]
            digest = BehaviorDigest(
                steps=d["steps"], stdout_hash=d["stdout_hash"],
                failed=d["failed"],
                failure_identity=d.get("failure_identity", ""),
                exit_value=d.get("exit_value", 0))
        return cls(
            program=payload["program"],
            args=tuple(payload["args"]),
            entry=payload.get("entry", "main"),
            schedule=[(t, n) for t, n in payload["schedule"]],
            digest=digest,
            mem_events=payload.get("mem_events", 0),
            sync_events=payload.get("sync_events", 0),
        )
