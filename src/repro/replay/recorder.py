"""Full-execution recording (the Mozilla-rr-like baseline).

The paper's Fig. 13 compares full Intel PT tracing against Mozilla rr: rr
records *everything* (control flow, data, scheduling) in software, at an
average 984% overhead versus PT's 11%.  :class:`Recorder` reproduces that
cost structure: per-instruction and per-memory-access logging charges from
:mod:`repro.runtime.costmodel`, while capturing a schedule log sufficient
for deterministic replay.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..lang.ir import Module
from ..runtime.costmodel import RR_MEM_COST, RR_STEP_COST
from ..runtime.events import MemEvent, SyncEvent, Tracer
from ..runtime.failures import RunOutcome
from ..runtime.interpreter import Interpreter
from ..runtime.scheduler import Scheduler
from .log import BehaviorDigest, RecordLog

ArgValue = Union[int, str]


class Recorder(Tracer):
    """Attach to a run to produce a :class:`RecordLog`."""

    cost_per_step = RR_STEP_COST
    cost_per_mem = RR_MEM_COST

    def __init__(self, program: str, args: Sequence[ArgValue] = (),
                 entry: str = "main") -> None:
        self.log = RecordLog(program=program, args=tuple(args), entry=entry)

    def on_step(self, interp, tid: int, ins) -> None:
        self.log.append_step(tid)

    def on_mem(self, interp, event: MemEvent) -> None:
        self.log.mem_events += 1

    def on_sync(self, interp, event: SyncEvent) -> None:
        self.log.sync_events += 1

    def on_finish(self, interp) -> None:
        # The digest is completed by record() once the outcome is known.
        pass

    def finalize(self, outcome: RunOutcome) -> RecordLog:
        self.log.digest = BehaviorDigest(
            steps=outcome.steps,
            stdout_hash=BehaviorDigest.hash_stdout(outcome.stdout),
            failed=outcome.failed,
            failure_identity=(outcome.failure.identity()
                              if outcome.failure else ""),
            exit_value=outcome.exit_value,
        )
        return self.log


def record(module: Module, args: Sequence[ArgValue] = (),
           scheduler: Optional[Scheduler] = None, entry: str = "main",
           max_steps: int = 500_000) -> tuple:
    """Run once under full recording.  Returns (outcome, log)."""
    recorder = Recorder(module.name, args, entry)
    interp = Interpreter(module, entry=entry, args=args,
                         scheduler=scheduler, tracers=[recorder],
                         max_steps=max_steps)
    outcome = interp.run()
    log = recorder.finalize(outcome)
    return outcome, log
