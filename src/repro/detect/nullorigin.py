"""Casper-style null-origin causality tracing.

A null dereference's interesting question is rarely *where* the program
crashed — the faulting pc is in the failure report already — but where the
null **came from**.  Following Casper (PAPERS.md), :class:`NullOriginTracer`
tags null-producing stores as they retire and threads
origin → propagation → dereference chains through the failure report:

- a store of value ``0`` to an address whose storing thread has *not*
  recently loaded a null starts a chain (an ``"origin"`` hop — this is
  where the null was created);
- a store of ``0`` by a thread that just loaded ``0`` from a tracked
  address *extends* that address's chain (a ``"propagation"`` hop — the
  null moved, e.g. from a producer's slot into a consumer's local buffer);
- a null-page segfault (faulting address below ``GLOBAL_BASE``) is
  reclassified as :attr:`FailureKind.NULL_DEREF`, with the chain of the
  faulting thread's most recent null load appended with a ``"deref"`` hop.

Chains carry function/line per hop so failure sketches can render "where
the null was created" rows (:mod:`repro.core.render`).  Overwriting a
tracked address with a non-zero value retires its chain — only live nulls
are ever cited.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..runtime.events import MemEvent, Tracer
from ..runtime.failures import FailureKind, FailureReport, OriginHop, \
    RunOutcome
from ..runtime.memory import GLOBAL_BASE, HEAP_BASE, STACK_BASE, STRING_BASE

#: Chains longer than this cite the origin plus the freshest hops — null
#: relays through long pipelines stay readable in a sketch.
MAX_CHAIN_HOPS = 8


class NullOriginTracer(Tracer):
    """Track null creation and propagation; reclassify null-page faults."""

    wants_on_mem = True

    def __init__(self) -> None:
        self._interp = None
        #: address -> chain of hops explaining the null stored there
        self._chains: Dict[int, Tuple[OriginHop, ...]] = {}
        #: tid -> address of that thread's most recent null load
        self._last_null_load: Dict[int, int] = {}

    def on_start(self, interp) -> None:
        self._interp = interp

    def _hop(self, kind: str, tid: int, pc: int, step: int,
             address: Optional[int]) -> OriginHop:
        ins = self._interp.module.instr(pc)
        return OriginHop(kind=kind, tid=tid, pc=pc, step=step,
                         function=ins.func_name, line=ins.line,
                         address=address)

    def on_mem(self, interp, event: MemEvent) -> None:
        # Only globals and the heap carry nulls between program points
        # worth citing: stack slots hold zero-valued *ints* all the time
        # (loop counters, flags), and conflating those with null pointers
        # buries the chain in noise.  A null handoff between functions or
        # threads necessarily crosses shared memory.
        addr = event.address
        if addr < GLOBAL_BASE or addr >= STACK_BASE:
            return
        if STRING_BASE <= addr < HEAP_BASE:
            return
        if event.is_write:
            if event.value != 0:
                # A non-null overwrite retires the address's chain.
                if event.address in self._chains:
                    del self._chains[event.address]
                return
            source = self._last_null_load.get(event.tid)
            parent = self._chains.get(source) if source is not None else None
            hop_kind = "propagation" if parent else "origin"
            hop = self._hop(hop_kind, event.tid, event.pc, event.step,
                            event.address)
            chain = (parent or ()) + (hop,)
            if len(chain) > MAX_CHAIN_HOPS:
                chain = chain[:1] + chain[-(MAX_CHAIN_HOPS - 1):]
            self._chains[event.address] = chain
        elif event.value == 0:
            self._last_null_load[event.tid] = event.address

    # -- outcome post-processing --------------------------------------------

    def chain_for_failure(self, failure: FailureReport) \
            -> Tuple[OriginHop, ...]:
        """The origin chain explaining a null-page fault, ending with the
        dereference hop itself."""
        source = self._last_null_load.get(failure.tid)
        chain = self._chains.get(source, ()) if source is not None else ()
        deref = self._hop("deref", failure.tid, failure.pc,
                          self._interp.global_step, failure.address)
        return chain + (deref,)

    def amend(self, outcome: RunOutcome) -> RunOutcome:
        """Reclassify a null-page segfault as ``NULL_DEREF`` with origin."""
        failure = outcome.failure
        if failure is None or failure.kind is not FailureKind.SEGFAULT:
            return outcome
        if failure.address is None or failure.address >= GLOBAL_BASE:
            return outcome
        outcome.failure = FailureReport(
            kind=FailureKind.NULL_DEREF,
            pc=failure.pc,
            tid=failure.tid,
            message=(f"null pointer dereference "
                     f"(address {hex(failure.address)})"),
            stack=failure.stack,
            address=failure.address,
            origin=self.chain_for_failure(failure),
        )
        return outcome
