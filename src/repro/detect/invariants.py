"""Error-invariant ranking: an alternative scoring engine for predictors.

Error Invariants for Concurrent Traces (PAPERS.md) characterize each point
of a failing trace by a formula that (i) holds on every error trace and
(ii) is inconsistent with the correct executions — the interpolant between
"what the failing runs did" and "what the passing runs did".  Computing
real interpolants needs a solver; over Gist's trace slices we approximate
them statistically: a predictor is invariant-like to the degree that it

- **covers** the failing runs (it holds whenever the failure happens:
  recall, the "holds on every error trace" half), and
- **separates** them from the successful runs (it fails to hold on
  passing runs: specificity, the "inconsistent with correct executions"
  half).

:class:`ErrorInvariantRanker` scores ``recall × specificity`` — the
product form keeps a predictor that is vacuously true everywhere (the
classic F-measure failure mode on skewed run mixes) at score ~0, because
its specificity collapses.  Everything else — the occurrence counters,
``merge``/``state``/``from_state`` used by the control plane's shard-state
fold, cohort weights — is inherited unchanged from
:class:`~repro.core.stats.PredictorRanker`, so an invariants campaign
shards, journals, and merges exactly like an F-measure one.
"""

from __future__ import annotations

from typing import Optional

from ..core.predictors import Predictor
from ..core.stats import DEFAULT_BETA, PredictorRanker, PredictorStats

RANKER_KINDS = ("fmeasure", "invariants")


class ErrorInvariantRanker(PredictorRanker):
    """Rank predictors by interpolant-approximate error-invariant score.

    The score is reported through :attr:`PredictorStats.f_measure` so
    ranking, tie-breaks, sketch highlighting, and the ``best_per_kind``
    contract are shared with the F-measure engine verbatim — only the
    number in the slot changes meaning.
    """

    def stats_for(self, predictor: Predictor) -> PredictorStats:
        f_with = self._failing_counts.get(predictor, 0)
        s_with = self._successful_counts.get(predictor, 0)
        held = f_with + s_with
        precision = f_with / held if held else 0.0
        recall = f_with / self.total_failing if self.total_failing else 0.0
        specificity = (1.0 - s_with / self.total_successful
                       if self.total_successful else 0.0)
        return PredictorStats(
            predictor=predictor,
            failing_with=f_with,
            successful_with=s_with,
            precision=precision,
            recall=recall,
            f_measure=recall * specificity,
        )


def make_ranker(kind: str, beta: float = DEFAULT_BETA,
                failure_pc: Optional[int] = None) -> PredictorRanker:
    """Instantiate a ranking engine by name (``--ranker`` flag values)."""
    if kind == "fmeasure":
        return PredictorRanker(beta=beta, failure_pc=failure_pc)
    if kind == "invariants":
        return ErrorInvariantRanker(beta=beta, failure_pc=failure_pc)
    raise ValueError(f"unknown ranker kind {kind!r} "
                     f"(expected one of {RANKER_KINDS})")
