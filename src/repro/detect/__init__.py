"""The failure-class detection subsystem.

Gist's event streams already carry everything several *more* failure
classes need — this package turns them into first-class detectors that
plug into the interpreter's :class:`~repro.runtime.events.Tracer`
subscriber machinery:

- :mod:`repro.detect.vectorclock` — the immutable vector-clock algebra
  (the property-tested specification of happens-before);
- :mod:`repro.detect.races` — the online happens-before data-race
  detector (``FailureKind.DATA_RACE``);
- :mod:`repro.detect.nullorigin` — Casper-style null-origin causality
  chains (``FailureKind.NULL_DEREF``);
- :mod:`repro.detect.offline` — the same detectors over recorded replay
  logs, byte-identical to online detection;
- :mod:`repro.detect.invariants` — the error-invariants ranking engine
  (``--ranker invariants``), a drop-in alternative to F-measure.

Detectors are named so they can ride job descriptors across process
boundaries: a :class:`~repro.core.client.GistClient` (or a pool worker
rebuilding one from a :class:`~repro.fleet.executors.RunJob`) turns the
names back into tracers with :func:`make_detectors` and folds their
verdicts into the run's outcome with :func:`apply_detectors`.
"""

from __future__ import annotations

from typing import List, Sequence

from ..runtime.events import Tracer
from ..runtime.failures import RunOutcome
from .invariants import ErrorInvariantRanker, RANKER_KINDS, make_ranker
from .nullorigin import NullOriginTracer
from .races import RaceDetector
from .vectorclock import VectorClock

#: Detector names accepted on the wire, in CLI flags, and in BugSpecs.
DETECTOR_KINDS = ("races", "nullorigin")

_FACTORIES = {
    "races": RaceDetector,
    "nullorigin": NullOriginTracer,
}


def validate_detectors(kinds: Sequence[str]) -> tuple:
    """Normalize a detector-name sequence to a canonical ordered tuple."""
    for kind in kinds:
        if kind not in _FACTORIES:
            raise ValueError(f"unknown detector {kind!r} "
                             f"(expected one of {DETECTOR_KINDS})")
    # Canonical order: amendment precedence must not depend on flag order.
    return tuple(k for k in DETECTOR_KINDS if k in kinds)


def make_detectors(kinds: Sequence[str]) -> List[Tracer]:
    """Instantiate detector tracers for one run, in canonical order."""
    return [_FACTORIES[k]() for k in validate_detectors(kinds)]


def apply_detectors(outcome: RunOutcome,
                    detectors: Sequence[Tracer]) -> RunOutcome:
    """Fold every detector's verdict into a finished run's outcome.

    Null-origin reclassification runs before race promotion (a real crash
    always outranks a race diagnosis; ``RaceDetector.amend`` only fires on
    runs that did not otherwise fail), and the fold order is the canonical
    detector order, so the amended outcome is deterministic however the
    detector list was spelled.
    """
    for detector in sorted(detectors,
                           key=lambda d: isinstance(d, RaceDetector)):
        amend = getattr(detector, "amend", None)
        if amend is not None:
            outcome = amend(outcome)
    return outcome


__all__ = [
    "DETECTOR_KINDS",
    "RANKER_KINDS",
    "ErrorInvariantRanker",
    "NullOriginTracer",
    "RaceDetector",
    "VectorClock",
    "apply_detectors",
    "make_detectors",
    "make_ranker",
    "validate_detectors",
]
