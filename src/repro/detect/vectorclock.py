"""Vector clocks: the partial-order algebra under happens-before detection.

A :class:`VectorClock` maps thread ids to per-thread event counters.  The
algebra is the classic one (Mattern/Fidge):

- ``tick(tid)`` advances one thread's component — every synchronization
  *release* operation by a thread ticks its own component, so later
  acquires can distinguish "before the release" from "after";
- ``join`` is the component-wise maximum — an *acquire* joins the clock
  stored on the synchronization object into the acquiring thread's clock;
- ``a <= b`` iff every component of ``a`` is ≤ the matching component of
  ``b``; **happens-before** is the strict form (``a <= b and a != b``);
- two clocks neither of which ≤ the other are **concurrent** — the
  detector's candidate races.

Clocks are immutable: every operation returns a new clock, which is what
makes the algebra property-testable (join is a commutative, associative,
idempotent monoid with the empty clock as identity; happens-before is a
strict partial order).  The hot detector path (:mod:`repro.detect.races`)
uses plain mutable dicts with the same semantics for speed; this class is
the executable specification those dicts are pinned against.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple


class VectorClock:
    """An immutable vector clock over integer thread ids."""

    __slots__ = ("_components",)

    def __init__(self,
                 components: Optional[Mapping[int, int]] = None) -> None:
        # Zero components are dropped so equal clocks have equal reprs and
        # the empty clock is the unique join identity.
        self._components: Dict[int, int] = {
            tid: n for tid, n in (components or {}).items() if n != 0
        }
        for tid, n in self._components.items():
            if n < 0:
                raise ValueError(f"negative clock component for tid {tid}")

    # -- accessors -----------------------------------------------------------

    def get(self, tid: int) -> int:
        return self._components.get(tid, 0)

    def components(self) -> Dict[int, int]:
        return dict(self._components)

    def tids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._components))

    # -- algebra -------------------------------------------------------------

    def tick(self, tid: int) -> "VectorClock":
        """Advance ``tid``'s component by one (a release event)."""
        bumped = dict(self._components)
        bumped[tid] = bumped.get(tid, 0) + 1
        return VectorClock(bumped)

    def join(self, other: "VectorClock") -> "VectorClock":
        """Component-wise maximum (an acquire event)."""
        merged = dict(self._components)
        for tid, n in other._components.items():
            if n > merged.get(tid, 0):
                merged[tid] = n
        return VectorClock(merged)

    # -- ordering ------------------------------------------------------------

    def __le__(self, other: "VectorClock") -> bool:
        return all(n <= other._components.get(tid, 0)
                   for tid, n in self._components.items())

    def __lt__(self, other: "VectorClock") -> bool:
        return self <= other and self != other

    def happens_before(self, other: "VectorClock") -> bool:
        """Strict happens-before: ``self`` precedes ``other``."""
        return self < other

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock precedes the other (and they are not equal)."""
        return not self <= other and not other <= self

    # -- plumbing ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._components == other._components

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._components.items())))

    def __repr__(self) -> str:
        inner = ", ".join(f"{tid}: {n}"
                          for tid, n in sorted(self._components.items()))
        return f"VectorClock({{{inner}}})"


EMPTY = VectorClock()


def join_all(clocks: Iterable[VectorClock]) -> VectorClock:
    """Fold a collection of clocks with :meth:`VectorClock.join`."""
    out = EMPTY
    for clock in clocks:
        out = out.join(clock)
    return out


# -- plain-dict twin used on the detector hot path ---------------------------
#
# The detector keeps clocks as mutable Dict[int, int] to avoid allocating a
# VectorClock per sync operation.  These helpers mirror the algebra above
# one-for-one; tests/detect/test_vectorclock.py pins the two against each
# other under Hypothesis.


def dict_tick(clock: Dict[int, int], tid: int) -> None:
    clock[tid] = clock.get(tid, 0) + 1


def dict_join(clock: Dict[int, int], other: Mapping[int, int]) -> None:
    for tid, n in other.items():
        if n > clock.get(tid, 0):
            clock[tid] = n


def dict_ordered(component: int, tid: int,
                 observer: Mapping[int, int]) -> bool:
    """Is the epoch ``(tid, component)`` ≤ the observer's clock?  The
    FastTrack-style check the detector uses instead of full ≤: a prior
    access at ``tid``'s component ``component`` happens-before the current
    access iff the observer has seen at least that many of ``tid``'s
    release events."""
    return component <= observer.get(tid, 0)
