"""Offline detection over recorded executions.

Record logs carry the *schedule* (plus event counters), not the event
streams themselves — replay has always meant deterministic re-execution
(:mod:`repro.replay.replayer`).  Offline detection therefore re-executes
the log under its :class:`FixedScheduler` with the detector tracers
attached: the interpreter regenerates the identical ``MemEvent``/
``SyncEvent`` streams, and because detection is a pure function of those
streams, the offline verdict is **byte-identical** to what an online
detector saw during the original run (the A/B the detector test suite
pins on every detection corpus bug).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..lang.ir import Module
from ..replay.log import RecordLog
from ..runtime.failures import RaceInfo, RunOutcome
from ..runtime.interpreter import Interpreter
from ..runtime.scheduler import FixedScheduler


@dataclass
class OfflineDetection:
    """What re-executing a log under the detectors produced."""

    outcome: RunOutcome          # post-detection outcome (failure amended)
    races: List[RaceInfo]        # every distinct race, detection order
    detectors: Tuple[str, ...]


def detect_offline(module: Module, log: RecordLog,
                   detectors: Sequence[str] = ("races", "nullorigin"),
                   max_steps: int = 2_000_000) -> OfflineDetection:
    """Re-execute a recorded run with detectors attached."""
    from . import make_detectors, apply_detectors

    if module.name != log.program:
        raise ValueError(f"log records {log.program!r}, "
                         f"got module {module.name!r}")
    tracers = make_detectors(detectors)
    interp = Interpreter(module, entry=log.entry, args=list(log.args),
                         scheduler=FixedScheduler(log.schedule),
                         tracers=list(tracers), max_steps=max_steps)
    outcome = apply_detectors(interp.run(), tracers)
    races: List[RaceInfo] = []
    for tracer in tracers:
        races.extend(getattr(tracer, "races", ()))
    return OfflineDetection(outcome=outcome, races=races,
                            detectors=tuple(detectors))
