"""Happens-before data-race detection over the interpreter's event streams.

:class:`RaceDetector` is a :class:`~repro.runtime.events.Tracer` that
consumes the same :class:`SyncEvent`/:class:`MemEvent` streams every other
dynamic component uses, maintaining per-thread vector clocks
(:mod:`repro.detect.vectorclock`) advanced at the synchronization
operations :mod:`repro.runtime.sync` emits:

====================  =====================================================
sync op               clock effect
====================  =====================================================
``mutex_unlock``      release: snapshot the holder's clock onto the mutex,
                      then tick the holder's own component
``mutex_lock``        acquire: join the mutex's stored clock
``cond_signal`` /     release: fold the signaller's clock into the condvar,
``cond_broadcast``    then tick
``cond_wait``         acquire: join the condvar's clock (the event fires at
                      mutex reacquisition, after the signal)
``thread_create``     child inherits the parent's clock (plus its own
                      component); the parent ticks
``thread_join``       the joiner joins the finished child's clock
====================  =====================================================

Two accesses to one shared address race when neither happens-before the
other (FastTrack-style epoch check: the prior access's ``(tid, component)``
is not covered by the current thread's clock) **and** the locksets held at
the two accesses are disjoint — the lockset filter is what keeps
condvar-protected polling idioms (release edges the event stream only
partially exposes) from producing false positives.

The detector is a pure function of the event stream, so it is
deterministic across executors and byte-identical between online runs and
offline replay re-execution (:mod:`repro.detect.offline`).  Per-access
cost is kept low with epoch short-circuits: a thread re-touching an
address it already touched since its last release does no clock work at
all, so tight racy loops pay one dict probe per iteration.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..runtime.events import MemEvent, SyncEvent, Tracer
from ..runtime.failures import (
    FailureKind,
    FailureReport,
    RaceAccess,
    RaceInfo,
    RunOutcome,
)
from ..runtime.memory import GLOBAL_BASE, HEAP_BASE, STACK_BASE, STRING_BASE
from .vectorclock import dict_join, dict_tick

_EMPTY_LOCKSET: FrozenSet[int] = frozenset()

#: (clock component, pc, step, value, lockset, stack) — one recorded access.
_Access = Tuple[int, int, int, int, FrozenSet[int], tuple]


class _Cell:
    """Per-address shadow state: the last write plus per-thread last reads."""

    __slots__ = ("wtid", "wclk", "wpc", "wstep", "wvalue", "wlockset",
                 "wstack", "reads")

    def __init__(self) -> None:
        self.wtid = -1
        self.wclk = 0
        self.wpc = -1
        self.wstep = -1
        self.wvalue = 0
        self.wlockset: FrozenSet[int] = _EMPTY_LOCKSET
        self.wstack: tuple = ()
        self.reads: Dict[int, _Access] = {}


class RaceDetector(Tracer):
    """Online happens-before race detector (attach via ``detectors``).

    Costs are left at zero: like the PT encoder, detection consumes events
    the hardware already produces — the modeled production cost lives in
    the instrumentation, not the observer.  ``BENCH_detectors.json``
    guards that modeled overhead (≤ 15% on detection campaigns) and
    tracks the simulator-side wall-clock slowdown informationally.
    """

    wants_on_mem = True
    wants_on_sync = True

    def __init__(self) -> None:
        self._interp = None
        self._clocks: Dict[int, Dict[int, int]] = {}
        self._mutex_clocks: Dict[int, Dict[int, int]] = {}
        self._cond_clocks: Dict[int, Dict[int, int]] = {}
        self._locksets: Dict[int, FrozenSet[int]] = {}
        self._cells: Dict[int, _Cell] = {}
        self._seen: set = set()
        #: Every distinct race, in detection order.
        self.races: List[RaceInfo] = []

    # -- tracer callbacks ----------------------------------------------------

    def on_start(self, interp) -> None:
        self._interp = interp

    def _clock_of(self, tid: int) -> Dict[int, int]:
        clock = self._clocks.get(tid)
        if clock is None:
            clock = self._clocks[tid] = {tid: 1}
        return clock

    def on_sync(self, interp, event: SyncEvent) -> None:
        op = event.op
        tid = event.tid
        clock = self._clock_of(tid)
        if op == "mutex_lock":
            stored = self._mutex_clocks.get(event.object_address)
            if stored is not None:
                dict_join(clock, stored)
            self._locksets[tid] = (
                self._locksets.get(tid, _EMPTY_LOCKSET)
                | {event.object_address})
        elif op == "mutex_unlock":
            self._mutex_clocks[event.object_address] = dict(clock)
            dict_tick(clock, tid)
            self._locksets[tid] = (
                self._locksets.get(tid, _EMPTY_LOCKSET)
                - {event.object_address})
        elif op in ("cond_signal", "cond_broadcast"):
            stored = self._cond_clocks.get(event.object_address)
            if stored is None:
                self._cond_clocks[event.object_address] = dict(clock)
            else:
                dict_join(stored, clock)
            dict_tick(clock, tid)
        elif op == "cond_wait":
            stored = self._cond_clocks.get(event.object_address)
            if stored is not None:
                dict_join(clock, stored)
        elif op == "thread_create":
            child = dict(clock)
            child[event.other_tid] = child.get(event.other_tid, 0) + 1
            self._clocks[event.other_tid] = child
            dict_tick(clock, tid)
        elif op == "thread_join":
            target = self._clocks.get(event.other_tid)
            if target is not None:
                dict_join(clock, target)

    def on_mem(self, interp, event: MemEvent) -> None:
        address = event.address
        # Only globals and the heap are shareable: the null page faults,
        # the string pool is immutable, and stacks are thread-private.
        if address < GLOBAL_BASE or address >= STACK_BASE:
            return
        if STRING_BASE <= address < HEAP_BASE:
            return
        tid = event.tid
        clock = self._clock_of(tid)
        clk = clock[tid]
        lockset = self._locksets.get(tid, _EMPTY_LOCKSET)
        cell = self._cells.get(address)
        if cell is None:
            cell = self._cells[address] = _Cell()
        if event.is_write:
            if cell.wtid == tid and cell.wclk == clk \
                    and cell.wlockset is lockset:
                cell.wvalue = event.value   # same-epoch rewrite: no new order
                return
            self._check_write(cell, address, tid, clk, lockset, event)
            cell.wtid = tid
            cell.wclk = clk
            cell.wpc = event.pc
            cell.wstep = event.step
            cell.wvalue = event.value
            cell.wlockset = lockset
            cell.wstack = interp.stack_trace(tid, event.pc)
            # A recorded write subsumes earlier reads: anything racing a
            # cleared read either happens-before it or races this write.
            if cell.reads:
                cell.reads.clear()
        else:
            prev = cell.reads.get(tid)
            if prev is not None and prev[0] == clk and prev[4] is lockset:
                return
            stack = interp.stack_trace(tid, event.pc)
            if cell.wtid >= 0 and cell.wtid != tid \
                    and cell.wclk > clock.get(cell.wtid, 0) \
                    and not (cell.wlockset & lockset):
                self._report(address, self._write_access(cell),
                             RaceAccess(tid=tid, pc=event.pc,
                                        step=event.step, is_write=False,
                                        value=event.value, stack=stack))
            cell.reads[tid] = (clk, event.pc, event.step, event.value,
                               lockset, stack)

    # -- race bookkeeping ----------------------------------------------------

    def _check_write(self, cell: _Cell, address: int, tid: int, clk: int,
                     lockset: FrozenSet[int], event: MemEvent) -> None:
        clock = self._clocks[tid]
        second = None
        if cell.wtid >= 0 and cell.wtid != tid \
                and cell.wclk > clock.get(cell.wtid, 0) \
                and not (cell.wlockset & lockset):
            second = RaceAccess(tid=tid, pc=event.pc, step=event.step,
                                is_write=True, value=event.value,
                                stack=self._interp.stack_trace(tid, event.pc))
            self._report(address, self._write_access(cell), second)
        for rtid, read in cell.reads.items():
            if rtid == tid:
                continue
            if read[0] > clock.get(rtid, 0) and not (read[4] & lockset):
                if second is None:
                    second = RaceAccess(
                        tid=tid, pc=event.pc, step=event.step, is_write=True,
                        value=event.value,
                        stack=self._interp.stack_trace(tid, event.pc))
                self._report(address,
                             RaceAccess(tid=rtid, pc=read[1], step=read[2],
                                        is_write=False, value=read[3],
                                        stack=read[5]),
                             second)

    @staticmethod
    def _write_access(cell: _Cell) -> RaceAccess:
        return RaceAccess(tid=cell.wtid, pc=cell.wpc, step=cell.wstep,
                          is_write=True, value=cell.wvalue,
                          stack=cell.wstack)

    def _report(self, address: int, first: RaceAccess,
                second: RaceAccess) -> None:
        key = (address, first.pc, second.pc, first.is_write, second.is_write)
        if key in self._seen:
            return
        self._seen.add(key)
        self.races.append(RaceInfo(address=address, first=first,
                                   second=second))

    # -- outcome post-processing --------------------------------------------

    def racy_lines(self) -> List[Tuple[str, int]]:
        """(function, line) pairs of every racing access — test support."""
        out = []
        for race in self.races:
            for acc in (race.first, race.second):
                if acc.stack:
                    out.append((acc.stack[0].function, acc.stack[0].line))
        return out

    def amend(self, outcome: RunOutcome) -> RunOutcome:
        """Promote a detected race into the run's failure.

        A run that already failed keeps its original report (a real crash
        outranks a race diagnosis); otherwise the canonical race — minimum
        ``(address, first.pc, second.pc)``, which is stable across
        schedules that expose the same racy pair — becomes a
        ``DATA_RACE`` failure whose pc/stack are the later access's.
        """
        if outcome.failed or not self.races:
            return outcome
        race = min(self.races, key=lambda r: (r.address, r.first.pc,
                                              r.second.pc, r.second.step))
        outcome.failed = True
        outcome.failure = FailureReport(
            kind=FailureKind.DATA_RACE,
            pc=race.second.pc,
            tid=race.second.tid,
            message=(f"unsynchronized accesses to {hex(race.address)} "
                     f"(threads {race.first.tid} and {race.second.tid})"),
            stack=race.second.stack,
            address=race.address,
            race=race,
        )
        return outcome
