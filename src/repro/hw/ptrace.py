"""A ptrace-shaped mediation layer for watchpoint placement.

Gist arms debug registers through the ``ptrace`` system call: attach, write
the DR registers, ``PTRACE_DETACH``, "thereby not incurring any performance
overhead" afterwards (§4).  The paper also documents the usability limit
this brings: if the target is *already* being ptraced (by a debugger or by
itself), Gist cannot attach (§6).

This module reproduces that contract:

- placement must go through an attached :class:`PtraceSession`;
- attaching to an already-traced process raises :class:`PtraceError`
  (``EPERM``, as the kernel would);
- each watchpoint write charges
  :data:`~repro.runtime.costmodel.PTRACE_WATCHPOINT_COST` cycles — the
  syscall round-trip the paper proposes to optimize away with a user-space
  instruction in future work;
- once detached, armed watchpoints stay armed and cost nothing until they
  trap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..runtime.costmodel import PTRACE_WATCHPOINT_COST
from .watchpoints import WatchpointUnit


class PtraceError(Exception):
    """ptrace-layer failures (EPERM on attach, detached writes, ...)."""
    pass


@dataclass
class TraceeState:
    """Per-process ptrace bookkeeping (one per interpreter run)."""

    already_traced: bool = False   # e.g. the program uses ptrace itself
    attached_by: Optional["PtraceSession"] = None


class PtraceSession:
    """One attach..detach span against a tracee."""

    def __init__(self, tracee: TraceeState, unit: WatchpointUnit) -> None:
        self.tracee = tracee
        self.unit = unit
        self.attached = False
        self.syscall_cost = 0
        self.placements: List[int] = []

    # -- lifecycle -----------------------------------------------------------

    def attach(self) -> "PtraceSession":
        if self.tracee.already_traced:
            raise PtraceError(
                "EPERM: process is already being traced (the paper's §6 "
                "limitation; use a third-party interface instead)")
        if self.tracee.attached_by is not None:
            raise PtraceError("EPERM: another session is attached")
        self.tracee.attached_by = self
        self.attached = True
        self.syscall_cost += PTRACE_WATCHPOINT_COST  # PTRACE_ATTACH + wait
        return self

    def detach(self) -> None:
        """PTRACE_DETACH: watchpoints stay armed, costs stop accruing."""
        if not self.attached:
            raise PtraceError("not attached")
        self.tracee.attached_by = None
        self.attached = False

    def __enter__(self) -> "PtraceSession":
        return self.attach()

    def __exit__(self, *exc) -> None:
        if self.attached:
            self.detach()

    # -- debug-register writes ---------------------------------------------------

    def place_watchpoint(self, address: int, length: int = 1,
                         condition: str = "rw") -> Optional[int]:
        """POKE the debug registers (active-set discipline applies)."""
        if not self.attached:
            raise PtraceError("cannot write debug registers while detached")
        self.syscall_cost += PTRACE_WATCHPOINT_COST
        slot = self.unit.watch_if_new(address, length, condition)
        if slot is not None:
            self.placements.append(slot)
        return slot

    def clear_watchpoint(self, slot: int) -> None:
        if not self.attached:
            raise PtraceError("cannot write debug registers while detached")
        self.syscall_cost += PTRACE_WATCHPOINT_COST
        self.unit.clear(slot)
