"""Hardware debug facilities: the 4-register watchpoint unit and ptrace."""

from .ptrace import PtraceError, PtraceSession, TraceeState
from .watchpoints import (
    NUM_DEBUG_REGISTERS,
    TrapRecord,
    Watchpoint,
    WatchpointError,
    WatchpointExhausted,
    WatchpointUnit,
)

__all__ = [
    "NUM_DEBUG_REGISTERS",
    "PtraceError",
    "PtraceSession",
    "TraceeState",
    "TrapRecord",
    "Watchpoint",
    "WatchpointError",
    "WatchpointExhausted",
    "WatchpointUnit",
]
