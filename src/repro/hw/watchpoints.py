"""Hardware watchpoints (x86 debug-register analogue).

x86 exposes four debug-address registers (DR0–DR3); the paper's data-flow
tracking budget is exactly those four per machine (§3.2.3), which is why
Gist (a) refuses to watch stack variables, (b) keeps an active-set to never
double-watch an address, and (c) falls back to splitting addresses across
production runs cooperatively when a slice window needs more than four.

:class:`WatchpointUnit` enforces the 4-register limit and, as a
:class:`~repro.runtime.events.Tracer`, converts matching memory events into
:class:`TrapRecord` objects.  Trap records carry the interpreter's global
step number, giving the *total order across threads* that Gist requires of
its data-flow log (the paper handles watchpoint traps atomically to get
this, §4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..runtime.costmodel import WATCHPOINT_TRAP_COST
from ..runtime.events import MemEvent, Tracer

NUM_DEBUG_REGISTERS = 4


class WatchpointExhausted(Exception):
    """All debug registers are in use."""


class WatchpointError(Exception):
    """Invalid watchpoint configuration."""
    pass


@dataclass(frozen=True)
class Watchpoint:
    """One armed debug register."""

    slot: int                 # 0..3 (DR0..DR3)
    address: int
    length: int = 1           # consecutive slots covered
    condition: str = "rw"     # "w" (write-only) or "rw"

    def matches(self, address: int, is_write: bool) -> bool:
        if not self.address <= address < self.address + self.length:
            return False
        if self.condition == "w":
            return is_write
        return True


@dataclass(frozen=True)
class TrapRecord:
    """One watchpoint hit.  ``seq`` is globally ordered across threads."""

    seq: int
    tid: int
    pc: int
    address: int
    is_write: bool
    value: int
    slot: int


@dataclass
class WatchpointUnit(Tracer):
    """Four debug registers plus the trap log they produce."""

    registers: Dict[int, Watchpoint] = field(default_factory=dict)
    trap_log: List[TrapRecord] = field(default_factory=list)
    traps_taken: int = 0

    # -- arming ------------------------------------------------------------

    def free_slots(self) -> List[int]:
        return [s for s in range(NUM_DEBUG_REGISTERS)
                if s not in self.registers]

    def watching(self, address: int) -> bool:
        return any(wp.address <= address < wp.address + wp.length
                   for wp in self.registers.values())

    def set_watchpoint(self, address: int, length: int = 1,
                       condition: str = "rw") -> int:
        if condition not in ("w", "rw"):
            raise WatchpointError(f"bad condition {condition!r}")
        if length < 1:
            raise WatchpointError("length must be >= 1")
        free = self.free_slots()
        if not free:
            raise WatchpointExhausted(
                f"all {NUM_DEBUG_REGISTERS} debug registers in use")
        slot = free[0]
        self.registers[slot] = Watchpoint(slot, address, length, condition)
        return slot

    def watch_if_new(self, address: int, length: int = 1,
                     condition: str = "rw") -> Optional[int]:
        """Arm a watchpoint unless the address is already covered — the
        active-set discipline of §3.2.3.  Returns the slot or None."""
        if self.watching(address):
            return None
        return self.set_watchpoint(address, length, condition)

    def clear(self, slot: int) -> None:
        self.registers.pop(slot, None)

    def clear_all(self) -> None:
        self.registers.clear()

    # -- trapping (Tracer callback) --------------------------------------------

    def on_mem(self, interp, event: MemEvent) -> None:
        if not self.registers:
            # Cheap out-of-line bail: the unit usually rides along unarmed
            # until a mid-run hook arms a register, so it must stay
            # *subscribed* to mem events (subscriptions are fixed at run
            # start) but should not scan an empty register file per access.
            return
        for wp in self.registers.values():
            if wp.matches(event.address, event.is_write):
                self.traps_taken += 1
                self.trap_log.append(TrapRecord(
                    seq=event.step, tid=event.tid, pc=event.pc,
                    address=event.address, is_write=event.is_write,
                    value=event.value, slot=wp.slot))
                break  # one trap per access, as in hardware

    def dynamic_extra_cost(self) -> int:
        return self.traps_taken * WATCHPOINT_TRAP_COST

    # -- queries ------------------------------------------------------------------

    def traps_at(self, address: int) -> List[TrapRecord]:
        return [t for t in self.trap_log if t.address == address]

    def total_order(self) -> List[TrapRecord]:
        """All traps, in global (cross-thread) order."""
        return sorted(self.trap_log, key=lambda t: t.seq)
