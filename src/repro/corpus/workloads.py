"""Workload calibration utilities.

The in-production regime the paper assumes — failures that recur but are a
minority of runs (§2's "once every 24 hours bugs in a 100 machine
cluster", scaled down) — is a *property of the corpus workloads*, so this
module makes it measurable: per-bug failure rates, failure-kind breakdowns,
and run costs.  The corpus tests pin these numbers; the calibration report
is also handy when adding a new bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..runtime.interpreter import run_program
from .registry import BugSpec


@dataclass
class CalibrationResult:
    """Measured workload behaviour for one bug."""

    bug_id: str
    runs: int = 0
    failures: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    failing_pcs: Dict[int, int] = field(default_factory=dict)
    avg_steps: float = 0.0
    avg_base_cost: float = 0.0

    @property
    def failure_rate(self) -> float:
        return self.failures / self.runs if self.runs else 0.0

    def dominant_failure_pc(self) -> Optional[int]:
        if not self.failing_pcs:
            return None
        return max(self.failing_pcs, key=lambda pc: self.failing_pcs[pc])

    def format(self) -> str:
        parts = [f"{self.bug_id}: {self.failures}/{self.runs} failing "
                 f"({100 * self.failure_rate:.0f}%), "
                 f"avg {self.avg_steps:.0f} steps"]
        for kind, count in sorted(self.outcomes.items()):
            parts.append(f"  {kind}: {count}")
        return "\n".join(parts)


def calibrate(spec: BugSpec, runs: int = 40,
              start_index: int = 0) -> CalibrationResult:
    """Run ``runs`` workloads of a bug and measure failure behaviour.

    Runs attach the bug's declared detectors (``spec.detectors``) — a
    data-race bug only *fails* when the happens-before detector watches
    the run, so calibrating it without detectors would measure nothing.
    """
    from ..detect import apply_detectors, make_detectors

    module = spec.module()
    result = CalibrationResult(bug_id=spec.bug_id)
    total_steps = 0
    total_cost = 0
    for i in range(start_index, start_index + runs):
        workload = spec.workload_factory(i)
        detectors = make_detectors(spec.detectors)
        outcome = run_program(module, args=list(workload.args),
                              scheduler=workload.make_scheduler(),
                              max_steps=workload.max_steps,
                              tracers=list(detectors))
        outcome = apply_detectors(outcome, detectors)
        result.runs += 1
        total_steps += outcome.steps
        total_cost += outcome.base_cost
        if outcome.failed:
            result.failures += 1
            kind = outcome.failure.kind.value
            result.outcomes[kind] = result.outcomes.get(kind, 0) + 1
            pc = outcome.failure.pc
            result.failing_pcs[pc] = result.failing_pcs.get(pc, 0) + 1
        else:
            result.outcomes["ok"] = result.outcomes.get("ok", 0) + 1
    result.avg_steps = total_steps / max(result.runs, 1)
    result.avg_base_cost = total_cost / max(result.runs, 1)
    return result


def in_production_regime(result: CalibrationResult,
                         min_rate: float = 0.02,
                         max_rate: float = 0.60) -> bool:
    """Does a bug behave like an in-production failure?  It must recur
    (diagnosable) without failing on most runs (successful runs are what
    the statistics correlate against)."""
    return min_rate <= result.failure_rate <= max_rate


def calibration_report(specs, runs: int = 40) -> str:
    """A report over several bugs (used when tuning the corpus)."""
    lines = []
    for spec in specs:
        result = calibrate(spec, runs=runs)
        marker = "" if in_production_regime(result) else "  <-- out of regime"
        lines.append(result.format() + marker)
    return "\n".join(lines)
