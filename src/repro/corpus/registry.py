"""The bug corpus registry.

Each corpus entry models one of the paper's 11 evaluated bugs (Table 1):
a MiniC program whose root-cause structure matches the real bug (same bug
class, same dec-check-free / use-after-free / lost-update / bad-input shape,
comparable root-cause-to-failure distance), plus workloads and a
hand-written ideal failure sketch.

Ideal sketches are *annotated in the MiniC source* rather than maintained as
separate line lists, so they survive edits.  A trailing marker comment on a
statement line declares its role::

    f->mut = NULL;            //@ root acc=3
    mutex_unlock(f->mut);     //@ ideal acc=4
    len = strlen(u->cur);     //@ ideal

- ``ideal``      — the statement belongs to the ideal failure sketch;
- ``root``       — the statement is (part of) the root cause (implies ideal);
- ``acc=N``      — the statement is a shared-memory access whose expected
  position in the ideal global access order is N (implies ideal);
- ``rootval=V``  — the bug's root cause is *pointed to* by a value
  predictor: the top-ranked value predictor must sit on this statement
  with value V (implies ideal).  Sequential input-dependent bugs (Curl,
  Fig. 7) are diagnosed this way in the paper — the sketch's dotted boxes
  are values, not extra statements.

:func:`parse_annotations` extracts these after compilation, resolving each
annotated line to its function.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core.accuracy import IdealSketch
from ..core.workload import Workload, WorkloadFactory
from ..lang.codegen import compile_source
from ..lang.ir import Module
from ..runtime.failures import FailureKind

StatementKey = Tuple[str, int]

_MARKER = re.compile(r"//@\s*(.*)$")


class CorpusError(Exception):
    """Raised for unknown bugs or malformed corpus annotations."""
    pass


@dataclass
class BugSpec:
    """One corpus bug, with everything the evaluation needs."""

    bug_id: str                  # e.g. "apache-21287"
    software: str                # "Apache httpd"
    software_version: str        # "2.0.48"
    software_loc: int            # real application size (paper Table 1)
    bug_db_id: str               # official bug database id
    kind: str                    # "concurrency" | "sequential"
    failure_kind: FailureKind
    description: str
    source: str                  # annotated MiniC
    workload_factory: WorkloadFactory
    #: A workload very likely to fail (used by tests to probe quickly).
    failing_probe: Optional[Workload] = None
    module_name: str = ""
    #: Extension bugs go beyond the paper's Table 1 (e.g. the condition-
    #: variable pbzip2 variant); the paper benches exclude them by default.
    extra: bool = False
    #: Detection tracers (:data:`repro.detect.DETECTOR_KINDS` names) the
    #: evaluation attaches to this bug's runs.  Empty for the Table 1
    #: corpus — their failure modes need no detector; the detection-
    #: subsystem bugs (data races, null handoffs) set this so their
    #: failures get classified at all.
    detectors: Tuple[str, ...] = ()
    _module: Optional[Module] = field(default=None, repr=False)
    _ideal: Optional[IdealSketch] = field(default=None, repr=False)

    # -- lazy compilation ------------------------------------------------------

    def module(self) -> Module:
        if self._module is None:
            self._module = compile_source(
                self.source, self.module_name or self.bug_id)
        return self._module

    def ideal_sketch(self) -> IdealSketch:
        if self._ideal is None:
            self._ideal = build_ideal_sketch(self.bug_id, self.source,
                                             self.module())
        return self._ideal

    def root_cause_statements(self) -> List[StatementKey]:
        return sorted(self.ideal_sketch().root_cause)

    def sketch_has_root(self, sketch) -> bool:
        """The evaluation oracle: does this sketch point at the root cause?

        Concurrency bugs: the root-cause statements must appear in the
        sketch.  Value-diagnosed bugs (``rootval=`` annotations): the
        sketch's top-ranked *value* predictor must sit on an annotated
        statement with the annotated value — the paper verified that "the
        failure predictors with the highest F-measure indeed correspond to
        the root causes that developers chose to fix" (§5.1).
        """
        ideal = self.ideal_sketch()
        ok = True
        if ideal.root_cause:
            ok = sketch.contains_statements(sorted(ideal.root_cause))
        if ideal.value_roots:
            top = sketch.predictors.get("value")
            if top is None:
                return False
            uid, value = top.predictor.detail
            ins = self.module().instr(uid)
            key = (ins.func_name, ins.line)
            if not any(key == k and value == v
                       for k, v in ideal.value_roots):
                return False
        return ok


# ---------------------------------------------------------------------------
# Annotation parsing
# ---------------------------------------------------------------------------


@dataclass
class LineAnnotation:
    """One parsed ``//@`` marker: role flags for a source line."""
    line: int
    ideal: bool = False
    root: bool = False
    acc: Optional[int] = None
    rootval: Optional[int] = None


def parse_annotations(source: str) -> List[LineAnnotation]:
    """Extract ``//@`` ideal-sketch markers from MiniC source."""
    out: List[LineAnnotation] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _MARKER.search(text)
        if not match:
            continue
        ann = LineAnnotation(line=lineno)
        for token in match.group(1).split():
            if token == "ideal":
                ann.ideal = True
            elif token == "root":
                ann.root = True
                ann.ideal = True
            elif token.startswith("acc="):
                ann.acc = int(token[4:])
                ann.ideal = True
            elif token.startswith("rootval="):
                ann.rootval = int(token[8:])
                ann.ideal = True
            else:
                raise CorpusError(
                    f"unknown annotation token {token!r} on line {lineno}")
        out.append(ann)
    return out


def _function_of_line(module: Module, line: int) -> str:
    for ins in module.instructions():
        if ins.line == line:
            return ins.func_name
    raise CorpusError(f"annotated line {line} produced no instructions")


def build_ideal_sketch(bug: str, source: str,
                       module: Module) -> IdealSketch:
    """Resolve a bug's annotations into its :class:`IdealSketch`."""
    annotations = parse_annotations(source)
    if not annotations:
        raise CorpusError(f"{bug}: source has no //@ annotations")
    statements: Set[StatementKey] = set()
    root: Set[StatementKey] = set()
    value_roots: List[Tuple[StatementKey, int]] = []
    accesses: List[Tuple[int, StatementKey]] = []
    ir_size = 0
    for ann in annotations:
        key = (_function_of_line(module, ann.line), ann.line)
        statements.add(key)
        ir_size += sum(1 for ins in module.instructions()
                       if ins.line == ann.line)
        if ann.root:
            root.add(key)
        if ann.rootval is not None:
            value_roots.append((key, ann.rootval))
        if ann.acc is not None:
            accesses.append((ann.acc, key))
    accesses.sort()
    order = [key for _n, key in accesses]
    return IdealSketch(
        bug=bug,
        statements=statements,
        access_order=order,
        root_cause=root,
        value_roots=value_roots,
        size_loc=len(statements),
        size_ir=ir_size,
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Callable[[], BugSpec]] = {}


def register(bug_id: str) -> Callable:
    """Decorator for corpus spec factories."""

    def deco(factory: Callable[[], BugSpec]) -> Callable[[], BugSpec]:
        _REGISTRY[bug_id] = factory
        return factory

    return deco


def _ensure_loaded() -> None:
    # Import app modules for their registration side effects.
    from .apps import (  # noqa: F401
        apache,
        cppcheck,
        curl,
        evloop,
        memcached,
        pbzip2,
        pbzip2_cv,
        ringbuf,
        sqlite,
        tpqueue,
        transmission,
    )


def all_bug_ids(include_extra: bool = False) -> List[str]:
    """The paper's 11 Table-1 bugs; ``include_extra`` adds the extension
    bugs this reproduction ships beyond the paper."""
    _ensure_loaded()
    ids = sorted(_REGISTRY)
    if include_extra:
        return ids
    return [bug_id for bug_id in ids if not _REGISTRY[bug_id]().extra]


def get_bug(bug_id: str) -> BugSpec:
    """Look a corpus bug up by id (raises :class:`CorpusError`)."""
    _ensure_loaded()
    try:
        factory = _REGISTRY[bug_id]
    except KeyError:
        raise CorpusError(f"unknown bug {bug_id!r}; "
                          f"known: {sorted(_REGISTRY)}") from None
    return factory()


def all_bugs(include_extra: bool = False) -> List[BugSpec]:
    """Instantiate every registered bug spec."""
    return [get_bug(bug_id) for bug_id in all_bug_ids(include_extra)]
