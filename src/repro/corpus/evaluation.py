"""Evaluation harness: runs the paper's experiments over the corpus.

This module encodes §5's methodology:

- :func:`evaluate_bug` — one full diagnosis campaign for one bug, scoring
  every AsT iteration's sketch against the hand-written ideal sketch and
  reporting the *best* sketch Gist computed plus the failure recurrences
  needed to reach it (Table 1's latency metric).
- Ablation ``mode``:  ``"static"`` (slicing only), ``"cf"`` (slicing +
  control-flow tracking), ``"full"`` (slicing + control flow + data flow)
  — the three bars of Fig. 10.
- :func:`overhead_for_sigma` — client overhead as a function of the tracked
  slice size (Fig. 11).
- :func:`full_tracing_overheads` — Intel PT vs software PT vs record/replay
  full-tracing costs (Fig. 13).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..analysis.context import AnalysisContext
from ..analysis.slicing import StaticSlice
from ..core.accuracy import AccuracyReport, score
from ..core.client import GistClient
from ..core.cooperative import CooperativeDeployment
from ..core.sketch import FailureSketch, SketchStep
from ..instrument.patch import Patch
from ..pt.encoder import PTConfig, PTEncoder, SoftwarePTEncoder
from ..replay.recorder import Recorder
from ..runtime.interpreter import Interpreter
from .registry import BugSpec

MODES = ("static", "cf", "full", "ptw")


def strip_watch_hooks(patch: Patch) -> Patch:
    """A patch variant with data-flow tracking disabled (the "cf" mode)."""
    hooks = tuple(h for h in patch.hooks if h.action != "watch")
    return Patch(program=patch.program, hooks=hooks,
                 watch_assignment=frozenset())


@dataclass
class IterationScore:
    """One AsT iteration's sketch, scored against the ideal."""
    iteration: int
    sigma: int
    recurrences_so_far: int
    accuracy: Optional[AccuracyReport]
    root_found: bool
    sketch: Optional[FailureSketch]


@dataclass
class BugEvaluation:
    """Everything Table 1 / Figs. 9, 10, 12 read for one bug."""

    bug_id: str
    mode: str = "full"
    found: bool = False
    slice_loc: int = 0
    slice_ir: int = 0
    ideal_loc: int = 0
    ideal_ir: int = 0
    sketch_loc: int = 0
    sketch_ir: int = 0
    recurrences: int = 0
    total_runs: int = 0
    iterations_used: int = 0
    relevance: float = 0.0
    ordering: float = 0.0
    avg_overhead_percent: float = 0.0
    wall_seconds: float = 0.0
    offline_seconds: float = 0.0
    best: Optional[IterationScore] = None
    per_iteration: List[IterationScore] = field(default_factory=list)

    @property
    def overall_accuracy(self) -> float:
        return (self.relevance + self.ordering) / 2.0


class _ModeClient(GistClient):
    """A client whose patches are filtered per the ablation mode."""

    def __init__(self, module, endpoint_id: int, mode: str,
                 detectors=()) -> None:
        super().__init__(module, endpoint_id, ptwrite=(mode == "ptw"),
                         detectors=detectors)
        self.mode = mode

    def prepare_patch(self, patch):
        # Implemented as a patch transform (not a run() override) so remote
        # execution engines apply the ablation before a job ships out.
        if patch is not None and self.mode == "cf":
            patch = strip_watch_hooks(patch)
        return patch


def _static_only_sketch(spec: BugSpec, slice_: StaticSlice,
                        sigma: int) -> FailureSketch:
    """The "static slicing only" sketch of Fig. 10: the σ-window of the
    slice, in slice order, with no runtime information at all."""
    module = spec.module()
    window = slice_.window(sigma)
    steps: List[SketchStep] = []
    seen: set = set()
    for ins in slice_.instructions():
        if ins.uid not in window:
            continue
        key = (ins.func_name, ins.line)
        if key in seen:
            continue
        seen.add(key)
        steps.append(SketchStep(
            order=len(steps) + 1, tid=0, uid=ins.uid, func=ins.func_name,
            line=ins.line, source=module.source_line(ins.line)))
    # Static analysis can only guess program-text order for accesses.
    access_order = [(s.func, s.line) for s in steps]
    return FailureSketch(
        bug=spec.bug_id,
        failure_type="static slice (no runtime refinement)",
        module_name=module.name,
        failing_uid=slice_.failing_uid,
        threads=[0],
        steps=steps,
        statement_uids=set(window),
        access_order=access_order,
        sigma=sigma,
    )


def evaluate_bug(
    spec: BugSpec,
    mode: str = "full",
    endpoints: int = 4,
    initial_sigma: int = 2,
    max_iterations: int = 8,
    max_runs_per_iteration: int = 120,
    min_successful_per_iteration: int = 3,
    max_bootstrap_runs: int = 400,
    context: Optional["AnalysisContext"] = None,
    fleet_workers: int = 1,
    executor: str = "threads",
    engine=None,
    transport: str = "wire",
    fault_plan=None,
    ranker: str = "fmeasure",
) -> BugEvaluation:
    """Run one diagnosis campaign and score it against the ideal sketch.

    Mirrors §5.1's methodology: AsT keeps iterating; the evaluation reports
    the best sketch Gist computed and the number of failure recurrences
    needed to reach it.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}")
    module = spec.module()
    ideal = spec.ideal_sketch()
    roots = spec.root_cause_statements()
    result = BugEvaluation(bug_id=spec.bug_id, mode=mode,
                           ideal_loc=ideal.size_loc, ideal_ir=ideal.size_ir)
    t0 = time.perf_counter()

    deployment = CooperativeDeployment(module, spec.workload_factory,
                                       endpoints=endpoints, bug=spec.bug_id,
                                       context=context,
                                       fleet_workers=fleet_workers,
                                       executor=executor,
                                       engine=engine,
                                       transport=transport,
                                       fault_plan=fault_plan,
                                       detectors=spec.detectors,
                                       ranker=ranker)
    if mode in ("cf", "ptw"):
        deployment.clients = [_ModeClient(module, i, mode,
                                          detectors=spec.detectors)
                              for i in range(endpoints)]
    stats = deployment.run_campaign(
        initial_sigma=initial_sigma,
        stop_when=(lambda sketch: False),  # explore; select best post hoc
        max_iterations=max_iterations,
        max_runs_per_iteration=max_runs_per_iteration,
        min_successful_per_iteration=min_successful_per_iteration,
        max_bootstrap_runs=max_bootstrap_runs,
    )
    result.total_runs = stats.total_runs
    result.avg_overhead_percent = stats.avg_overhead_percent
    result.offline_seconds = stats.offline_seconds

    campaigns = list(deployment.server.campaigns.values())
    if not campaigns:
        result.wall_seconds = time.perf_counter() - t0
        return result
    campaign = campaigns[0]
    result.slice_loc = campaign.slice.size_loc()
    result.slice_ir = campaign.slice.size_ir()

    recurrences = 1  # the bootstrap failure
    for it in stats.iteration_results:
        recurrences += it.failing_runs
        sketch = it.sketch
        if mode == "static" and sketch is not None:
            sketch = _static_only_sketch(spec, campaign.slice, it.sigma)
        if sketch is None:
            continue
        acc = score(sketch, ideal)
        result.per_iteration.append(IterationScore(
            iteration=it.iteration, sigma=it.sigma,
            recurrences_so_far=recurrences,
            accuracy=acc,
            root_found=spec.sketch_has_root(sketch),
            sketch=sketch))

    best = _select_best(result.per_iteration)
    if best is not None and best.sketch is not None:
        result.best = best
        result.found = best.root_found
        result.recurrences = best.recurrences_so_far
        result.iterations_used = best.iteration
        result.sketch_loc = best.sketch.size_loc()
        result.sketch_ir = best.sketch.size_ir()
        assert best.accuracy is not None
        result.relevance = best.accuracy.relevance
        result.ordering = best.accuracy.ordering
    result.wall_seconds = time.perf_counter() - t0
    return result


def _select_best(scores: Sequence[IterationScore]) -> Optional[IterationScore]:
    """The paper reports "the best sketch that Gist can compute": prefer
    sketches containing the root cause, then highest overall accuracy, then
    the earliest (lowest-latency) iteration."""
    ranked = [s for s in scores if s.accuracy is not None]
    if not ranked:
        return None
    return max(ranked, key=lambda s: (
        s.root_found,
        s.accuracy.overall,           # type: ignore[union-attr]
        -s.recurrences_so_far,
    ))


# ---------------------------------------------------------------------------
# Fig. 11: overhead vs tracked slice size
# ---------------------------------------------------------------------------


def overhead_for_sigma(spec: BugSpec, sigma: int,
                       runs: int = 8) -> float:
    """Average client overhead (%) when tracking a σ-statement window."""
    module = spec.module()
    client = GistClient(module)
    # Build the slice from the bug's failing probe (one bootstrap failure).
    probe = spec.failing_probe or spec.workload_factory(0)
    report = None
    for attempt in range(200):
        out = client.run(spec.workload_factory(attempt)).outcome
        if out.failed:
            report = out.failure
            break
    if report is None:
        return 0.0
    from ..core.server import GistServer

    server = GistServer(module)
    campaign = server.handle_failure_report(spec.bug_id, report,
                                            initial_sigma=sigma)
    campaign.begin_iteration()
    patches = campaign.make_patches(1)
    overheads: List[float] = []
    for i in range(runs):
        workload = spec.workload_factory(1000 + i)
        res = client.run(workload, patch=patches[i % len(patches)])
        assert res.monitored is not None
        overheads.append(res.monitored.overhead)
    return 100.0 * sum(overheads) / len(overheads)


# ---------------------------------------------------------------------------
# Fig. 13: full-tracing overheads (Intel PT vs software PT vs record/replay)
# ---------------------------------------------------------------------------


@dataclass
class TracingOverheads:
    """Full-tracing overheads of one program under the three tracers."""
    bug_id: str
    intel_pt_percent: float
    software_pt_percent: float
    rr_percent: float

    @property
    def rr_over_pt(self) -> float:
        """Mozilla-rr-to-Intel-PT overhead ratio (∞ when PT ≈ free)."""
        if self.intel_pt_percent <= 0.005:
            return float("inf")
        return self.rr_percent / self.intel_pt_percent


def full_tracing_overheads(spec: BugSpec, runs: int = 5) -> TracingOverheads:
    """Measure full-program tracing costs for one corpus program."""
    module = spec.module()

    def measure(make_tracer) -> float:
        total = 0.0
        for i in range(runs):
            workload = spec.workload_factory(i)
            tracer = make_tracer()
            interp = Interpreter(module, args=list(workload.args),
                                 scheduler=workload.make_scheduler(),
                                 tracers=[tracer],
                                 max_steps=workload.max_steps)
            out = interp.run()
            total += out.overhead
        return 100.0 * total / runs

    return TracingOverheads(
        bug_id=spec.bug_id,
        intel_pt_percent=measure(
            lambda: PTEncoder(PTConfig(), trace_on_start=True)),
        software_pt_percent=measure(
            lambda: SoftwarePTEncoder(PTConfig(), trace_on_start=True)),
        rr_percent=measure(
            lambda: Recorder(module.name)),
    )
