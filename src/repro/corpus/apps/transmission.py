"""Transmission bug #1818 — an initialization order violation.

Real bug: Transmission 1.42 asserted ``h->bandwidth != NULL`` inside the
event thread: ``tr_sessionInitFull`` spawned the event loop *before*
finishing session initialization, so a fast-starting event thread observed
the half-initialized session.

Model: ``main`` allocates the session, spawns the event loop, then finishes
loading configuration (a parsing kernel) before publishing
``session->bandwidth``.  The event thread validates the session when its
first event fires; if it wins the race it asserts.
"""

from __future__ import annotations

from ..registry import BugSpec, register
from ...core.workload import Workload
from ...runtime.failures import FailureKind

SOURCE = """\
// transmission (model): event thread races session initialization.
struct session {
    int bandwidth;
    int port;
    int peer_limit;
    int events_run;
};

struct session* session;
int event_total = 0;

int parse_config(int rounds) {
    int acc = 443;
    int i;
    for (i = 0; i < rounds; i++) {
        acc = (acc * 131 + i) % 59999;
    }
    return acc;
}

int run_event(int kind, int rounds) {
    int acc = kind + 11;
    int i;
    for (i = 0; i < rounds; i++) {
        acc = (acc * 31 + kind) % 49999;
    }
    return acc;
}

void event_loop(int rounds) {
    // First event: decode it, then validate the session before use.
    int v = run_event(0, rounds);
    assert(session->bandwidth != 0, "session->bandwidth set");  //@ ideal acc=1 rootval=0
    event_total = event_total + v + session->bandwidth;
    int kind;
    for (kind = 1; kind < 3; kind++) {
        event_total = event_total + run_event(kind, rounds / 4);
        usleep(2);
    }
    session->events_run = session->events_run + 1;
}

int main(int config_rounds, int event_rounds) {
    session = malloc(sizeof(struct session));
    session->bandwidth = 0;                            //@ ideal
    session->port = 0;
    session->peer_limit = 0;
    session->events_run = 0;
    // BUG: the event thread starts before initialization completes.
    int t = thread_create(event_loop, event_rounds);   //@ ideal
    session->port = 51413;
    session->peer_limit = parse_config(config_rounds) % 200 + 40;
    session->bandwidth = 100;                          //@ ideal
    thread_join(t);
    print(event_total);
    free(session);
    return 0;
}
"""


def _workload_factory(index: int) -> Workload:
    return Workload(args=(185, 215), seed=18000 + index, switch_prob=0.02,
                    max_steps=400_000)


@register("transmission-1818")
def make_spec() -> BugSpec:
    """Build this bug's :class:`BugSpec` (registered factory)."""
    return BugSpec(
        bug_id="transmission-1818",
        software="Transmission",
        software_version="1.42",
        software_loc=59_977,
        bug_db_id="1818",
        kind="concurrency",
        failure_kind=FailureKind.ASSERTION,
        description=("event thread spawned before session init completes; "
                     "its first event asserts on the unset bandwidth field "
                     "(order violation)"),
        source=SOURCE,
        workload_factory=_workload_factory,
        failing_probe=Workload(args=(185, 215), seed=18004,
                               switch_prob=0.02, max_steps=400_000),
        module_name="transmission",
    )
