"""Memcached bug #127 — non-atomic incr/decr.

Real bug: memcached 1.4.4's ``process_arithmetic_command`` performed
item-value increments as a read-modify-write without holding the cache
lock, so concurrent ``incr`` requests lost updates.

Model: two client-serving threads each apply ``incr`` operations to the
same cached item.  The increment parses the request (kernel), loads the
value, computes, and stores it back — unlocked.  ``main`` asserts the final
counter equals the number of increments issued; a lost update (the WW race
the paper's predictor set catches) trips the assert.
"""

from __future__ import annotations

from ..registry import BugSpec, register
from ...core.workload import Workload
from ...runtime.failures import FailureKind

SOURCE = """\
// memcached (model): unlocked incr loses updates.
struct item {
    int key;
    int value;
    int flags;
    int hits;
};

struct item* it;
int requests = 0;

int parse_request(int req, int rounds) {
    int acc = req * 131 + 9;
    int i;
    for (i = 0; i < rounds; i++) {
        acc = (acc * 37 + req) % 61031;
    }
    return acc;
}

void incr_item(int delta) {
    int v = it->value;                                 //@ ideal acc=1
    // Re-encode the value (memcached stores numbers as strings): work
    // sits between the read and the write, widening the race window.
    int chk = 0;
    int k;
    for (k = 0; k < 3; k++) {
        chk = (chk * 31 + v) % 9973;
    }
    it->value = v + delta;                             //@ root acc=2
    it->hits = it->hits + chk % 2 + 1;
}

void client_thread(int spec) {
    int nops = spec / 1000;
    int rounds = spec % 1000;
    int op;
    for (op = 0; op < nops; op++) {                    //@ ideal
        requests = requests + parse_request(op, rounds);
        incr_item(1);                                  //@ ideal
    }
}

int main(int spec1, int spec2) {
    it = malloc(sizeof(struct item));                  //@ ideal
    it->key = 7;
    it->value = 0;                                     //@ ideal
    it->flags = 0;
    it->hits = 0;
    int t1 = thread_create(client_thread, spec1);      //@ ideal
    int t2 = thread_create(client_thread, spec2);      //@ ideal
    thread_join(t1);
    thread_join(t2);
    int expected = spec1 / 1000 + spec2 / 1000;        //@ ideal
    assert(it->value == expected, "incr lost an update");  //@ ideal
    print(it->value);
    free(it);
    return 0;
}
"""


def _workload_factory(index: int) -> Workload:
    # 5 increments per client; parse kernels drift the two loops apart.
    return Workload(args=(5_150, 5_155), seed=12000 + index,
                    switch_prob=0.02, max_steps=400_000)


@register("memcached-127")
def make_spec() -> BugSpec:
    """Build this bug's :class:`BugSpec` (registered factory)."""
    return BugSpec(
        bug_id="memcached-127",
        software="Memcached",
        software_version="1.4.4",
        software_loc=8_182,
        bug_db_id="127",
        kind="concurrency",
        failure_kind=FailureKind.ASSERTION,
        description=("incr is an unlocked read-modify-write; two client "
                     "threads lose updates (WW race) and the final count "
                     "assert fails"),
        source=SOURCE,
        workload_factory=_workload_factory,
        failing_probe=Workload(args=(5_150, 5_155), seed=12002,
                               switch_prob=0.02, max_steps=400_000),
        module_name="memcached",
    )
