"""Extension bug: lock-free ring buffer with an unsynchronized index race.

Models the single-producer ring buffer pressed into multi-producer
service: the ring's publish path is intentionally lock-free (correct
under the SPSC contract — one producer owns ``tail``, the consumer owns
``head``), but a later change adds a *priority producer* thread that
publishes through the same path.  Two producers now do unsynchronized
read-modify-writes on ``tail`` (and on the slot the stale index points
at): published items are overwritten and the count drifts.

The program never crashes — the consumer (the main thread, after joining
both producers, so its reads are happens-before ordered) just sees fewer
items than were produced.  With the happens-before detector attached
(``detectors=("races",)``) the concurrent ``tail`` accesses have no
ordering edge and empty locksets, so they are reported as
:data:`FailureKind.DATA_RACE`.

Failure is input-dependent: the priority producer only runs when the
workload carries priority items (``nprio > 0``), which a minority of
workloads do — the SPSC contract holds for the rest.

Not part of the paper's Table 1 (``extra=True``); third of the
detection-subsystem corpus bugs.
"""

from __future__ import annotations

from ..registry import BugSpec, register
from ...core.workload import Workload
from ...runtime.failures import FailureKind

SOURCE = """\
// Lock-free SPSC ring, wrongly shared by two producers.
struct ring {
    int tail;         // owned by THE producer -- under the SPSC contract
    int head;         // owned by the consumer
    int slots[16];
};

struct ring* rb;
int produced = 0;

void publish(int item) {
    // The SPSC publish path: no fence, no lock -- by design.
    int t = rb->tail;                                      //@ ideal
    rb->slots[t % 16] = item;                              //@ ideal
    rb->tail = t + 1;                                      //@ root
}

void producer(int nitems) {
    int i;
    for (i = 0; i < nitems; i++) {                         //@ ideal
        publish(i * 3 + 1);
        usleep(1);
    }
}

void prio_producer(int nprio) {
    // BUG: the priority path reuses the SPSC publish path -- two
    // producers now race on tail and on the slot it points at.
    int i;
    for (i = 0; i < nprio; i++) {                          //@ ideal
        publish(1000 + i);
        usleep(1);
    }
}

int main(int nitems, int nprio) {
    rb = malloc(sizeof(struct ring));                      //@ ideal
    rb->tail = 0;
    rb->head = 0;
    int i;
    for (i = 0; i < 16; i++) {
        rb->slots[i] = 0;
    }
    int t1 = thread_create(producer, nitems);              //@ ideal
    int t2 = 0 - 1;
    if (nprio > 0) {
        t2 = thread_create(prio_producer, nprio);          //@ ideal
    }
    thread_join(t1);
    if (t2 >= 0) {
        thread_join(t2);
    }
    // Consumer side: joins order these reads after both producers.
    int sum = 0;
    while (rb->head < rb->tail && rb->head < 16) {
        sum = sum + rb->slots[rb->head % 16];
        rb->head = rb->head + 1;
    }
    produced = rb->tail;
    print(sum + produced);
    free(rb);
    return 0;
}
"""


def _workload_factory(index: int) -> Workload:
    # Heavy traffic on the ring; every third workload carries priority
    # items, which is when the second producer (and the race) appears.
    nprio = 6 if index % 3 == 0 else 0
    return Workload(args=(12, nprio), seed=95000 + index, switch_prob=0.06,
                    max_steps=400_000)


@register("ringbuf-1")
def make_spec() -> BugSpec:
    """Build this bug's :class:`BugSpec` (registered factory)."""
    return BugSpec(
        bug_id="ringbuf-1",
        software="Lock-free ring buffer (SPSC model)",
        software_version="N/A",
        software_loc=3_100,
        bug_db_id="N/A",
        kind="concurrency",
        failure_kind=FailureKind.DATA_RACE,
        description=("a priority producer reuses the lock-free SPSC "
                     "publish path; two producers race on the unfenced "
                     "tail index and overwrite each other's slots"),
        source=SOURCE,
        workload_factory=_workload_factory,
        failing_probe=Workload(args=(12, 6), seed=95000,
                               switch_prob=0.06, max_steps=400_000),
        module_name="ringbuf",
        extra=True,
        detectors=("races",),
    )
