"""Corpus application models (one module per real-world program)."""
