"""The four Apache httpd bugs of Table 1.

- **apache-21287** (Apache-3, httpd 2.0.48): mod_mem_cache's
  ``decrement_refcount`` performs dec / check / free non-atomically; two
  threads finishing with the same cached object can both observe
  ``refcnt == 0`` and both free it — a double free (the paper's Fig. 8).
  Fixed by making the decrement-check-free triplet atomic.
- **apache-25520** (Apache-2, httpd 2.0.48): the buffered access logger's
  ``len`` update is a non-atomic read-modify-write; concurrent appenders
  lose log entries / corrupt the buffer.
- **apache-21285** (Apache-4, httpd 2.0.46): connection teardown's
  check-then-free on a shared buffer races with the worker's own release
  path: both see the buffer pointer non-NULL and both free it.
- **apache-45605** (Apache-1, httpd 2.2.9): the core output filter checks a
  connection's brigade pointer and then dereferences it; an EOS cleanup on
  another thread NULLs the brigade between check and use (an RWR atomicity
  violation) and the filter segfaults.
"""

from __future__ import annotations

from ..registry import BugSpec, register
from ...core.workload import Workload
from ...runtime.failures import FailureKind

# ---------------------------------------------------------------------------
# apache-21287: dec / check / free double free (Fig. 8)
# ---------------------------------------------------------------------------

SOURCE_21287 = """\
// Apache mod_mem_cache (model): non-atomic decrement-check-free.
struct cacheobj {
    int refcnt;
    int complete;
    int key;
    int cleanup;
};

struct cacheobj* obj;
int served = 0;

int handle_request(int rounds) {
    // Request parsing + response generation stand-in.
    int acc = rounds + 7;
    int i;
    for (i = 0; i < rounds; i++) {
        acc = (acc * 131 + i) % 65599;
    }
    return acc;
}

void dec(struct cacheobj* o) {
    o->refcnt = o->refcnt - 1;                         //@ ideal acc=1
}

void cleanup_stats(int mobj, int n) {
    int acc = mobj;
    int i;
    for (i = 0; i < n; i++) {
        acc = (acc * 31 + i) % 7919;
    }
    served = served + acc % 2;
}

void decrement_refcount(int rounds) {
    served = served + handle_request(rounds);
    if (!obj->complete) {                              //@ ideal
        int mobj = obj->key;                           //@ ideal
        dec(obj);                                      //@ ideal
        cleanup_stats(mobj, 12);
        if (!obj->refcnt) {                            //@ ideal acc=3
            free(obj);                                 //@ root acc=2
        }
    }
}

int main(int r1, int r2) {
    obj = malloc(sizeof(struct cacheobj));             //@ ideal
    obj->refcnt = 2;                                   //@ ideal
    obj->complete = 0;                                 //@ ideal
    obj->key = 42;
    obj->cleanup = 0;
    int t1 = thread_create(decrement_refcount, r1);    //@ ideal
    int t2 = thread_create(decrement_refcount, r2);    //@ ideal
    thread_join(t1);
    thread_join(t2);
    print(served);
    return 0;
}
"""


def _factory_21287(index: int) -> Workload:
    return Workload(args=(200, 200), seed=21000 + index, switch_prob=0.05,
                    max_steps=400_000)


@register("apache-21287")
def make_21287() -> BugSpec:
    """Build this bug's :class:`BugSpec` (registered factory)."""
    return BugSpec(
        bug_id="apache-21287",
        software="Apache httpd",
        software_version="2.0.48",
        software_loc=169_747,
        bug_db_id="21287",
        kind="concurrency",
        failure_kind=FailureKind.USE_AFTER_FREE,
        description=("mod_mem_cache decrement_refcount: dec/check/free is "
                     "not atomic (Fig. 8).  On real hardware the losing "
                     "thread reads freed memory and double-frees; our "
                     "strict memory model faults at that freed-refcnt read "
                     "instead — same root cause, same sketch"),
        source=SOURCE_21287,
        workload_factory=_factory_21287,
        failing_probe=Workload(args=(200, 200), seed=21001,
                               switch_prob=0.05, max_steps=400_000),
        module_name="apache21287",
    )


# ---------------------------------------------------------------------------
# apache-25520: buffered-log lost update
# ---------------------------------------------------------------------------

SOURCE_25520 = """\
// Apache buffered access logging (model): racy buffer append.
struct logbuf {
    int len;
    int dropped;
    int data[128];
};

struct logbuf* buf;
int requests_done = 0;

int format_entry(int req, int rounds) {
    int acc = req * 13 + 1;
    int i;
    for (i = 0; i < rounds; i++) {
        acc = (acc * 37 + req) % 32719;
    }
    return acc;
}

void log_write(int entry) {
    int pos = buf->len;                                //@ ideal acc=1
    if (pos < 128) {                                   //@ ideal
        buf->data[pos] = entry;
        buf->len = pos + 1;                            //@ root acc=2
    } else {
        buf->dropped = buf->dropped + 1;
    }
}

void worker(int spec) {
    int nreq = spec / 1000;
    int rounds = spec % 1000;
    int i;
    for (i = 0; i < nreq; i++) {
        int entry = format_entry(i, rounds);
        log_write(entry);
        requests_done = requests_done + 1;
    }
}

int main(int spec1, int spec2) {
    buf = malloc(sizeof(struct logbuf));
    buf->len = 0;
    buf->dropped = 0;
    int t1 = thread_create(worker, spec1);
    int t2 = thread_create(worker, spec2);
    thread_join(t1);
    thread_join(t2);
    int expected = spec1 / 1000 + spec2 / 1000;        //@ ideal
    assert(buf->len + buf->dropped == expected, "log entries lost");  //@ ideal
    print(buf->len);
    return 0;
}
"""


def _factory_25520(index: int) -> Workload:
    # 6 requests each; formatting rounds differ so the loops drift.
    return Workload(args=(6_210, 6_195), seed=25000 + index,
                    switch_prob=0.02, max_steps=400_000)


@register("apache-25520")
def make_25520() -> BugSpec:
    """Build this bug's :class:`BugSpec` (registered factory)."""
    return BugSpec(
        bug_id="apache-25520",
        software="Apache httpd",
        software_version="2.0.48",
        software_loc=169_747,
        bug_db_id="25520",
        kind="concurrency",
        failure_kind=FailureKind.ASSERTION,
        description=("buffered logger's len update is a non-atomic RMW; "
                     "concurrent appenders lose entries"),
        source=SOURCE_25520,
        workload_factory=_factory_25520,
        failing_probe=Workload(args=(6_210, 6_195), seed=25003,
                               switch_prob=0.02, max_steps=400_000),
        module_name="apache25520",
    )


# ---------------------------------------------------------------------------
# apache-21285: check-then-free double free on connection teardown
# ---------------------------------------------------------------------------

SOURCE_21285 = """\
// Apache connection teardown (model): racy check-then-free.
struct conn {
    void* buf;
    int state;
    int bytes;
};

struct conn* conn;
int handled = 0;

int serve(int rounds) {
    int acc = 97;
    int i;
    for (i = 0; i < rounds; i++) {
        acc = (acc * 131 + i) % 49999;
    }
    return acc;
}

void release_conn(int rounds) {
    // Both the worker's normal path and the shutdown path run this
    // cleanup without holding the connection lock.  The buffer pointer is
    // read once; the free and the NULLing are not atomic with the check.
    void* b = conn->buf;                               //@ ideal acc=1
    if (b) {                                           //@ ideal
        serve(rounds / 16);
        free(b);                                       //@ root acc=3
        conn->buf = NULL;                              //@ ideal acc=2
    }
}

void worker(int rounds) {
    handled = handled + serve(rounds);
    conn->bytes = conn->bytes + 1;
    release_conn(rounds);                              //@ ideal
}

int main(int rounds, int shutdown_delay) {
    conn = malloc(sizeof(struct conn));                //@ ideal
    conn->buf = malloc(16);                            //@ ideal
    conn->state = 1;
    conn->bytes = 0;
    int t = thread_create(worker, rounds);             //@ ideal
    // Shutdown path: tear the connection down after a grace period.
    serve(shutdown_delay);
    release_conn(rounds);
    thread_join(t);
    free(conn);
    print(handled);
    return 0;
}
"""


def _factory_21285(index: int) -> Workload:
    return Workload(args=(160, 150), seed=31000 + index, switch_prob=0.05,
                    max_steps=400_000)


@register("apache-21285")
def make_21285() -> BugSpec:
    """Build this bug's :class:`BugSpec` (registered factory)."""
    return BugSpec(
        bug_id="apache-21285",
        software="Apache httpd",
        software_version="2.0.46",
        software_loc=168_574,
        bug_db_id="21285",
        kind="concurrency",
        failure_kind=FailureKind.DOUBLE_FREE,
        description=("worker release and shutdown release race through the "
                     "same check-then-free; both free the connection "
                     "buffer"),
        source=SOURCE_21285,
        workload_factory=_factory_21285,
        failing_probe=Workload(args=(160, 150), seed=31002,
                               switch_prob=0.05, max_steps=400_000),
        module_name="apache21285",
    )


# ---------------------------------------------------------------------------
# apache-45605: brigade check/use vs EOS cleanup (RWR)
# ---------------------------------------------------------------------------

SOURCE_45605 = """\
// Apache core output filter (model): brigade TOCTOU against EOS cleanup.
struct brigade {
    int nbytes;
    int nbuckets;
};

struct conn {
    struct brigade* brigade;
    int eos;
    int sent;
};

struct conn* conn;
int flushed = 0;

int network_send(int n, int rounds) {
    int acc = n;
    int i;
    for (i = 0; i < rounds; i++) {
        acc = (acc * 131 + n) % 65521;
    }
    return acc;
}

void output_filter(int rounds) {
    int pass;
    for (pass = 0; pass < 4; pass++) {                 //@ ideal
        if (conn->brigade) {                           //@ ideal acc=1
            int hdr = network_send(pass, 20);
            int n = conn->brigade->nbytes;             //@ ideal acc=3
            conn->sent = conn->sent + n + hdr;
            network_send(n, rounds / 4);
            flushed = flushed + 1;
        }
        usleep(3);
    }
}

void eos_cleanup(int rounds) {
    network_send(1, rounds);
    conn->eos = 1;
    conn->brigade = NULL;                              //@ root acc=2
}

int main(int rounds, int cleanup_delay) {
    conn = malloc(sizeof(struct conn));                //@ ideal
    struct brigade* b = malloc(sizeof(struct brigade));
    b->nbytes = 4096;
    b->nbuckets = 2;
    conn->brigade = b;                                 //@ ideal
    conn->eos = 0;
    conn->sent = 0;
    int t = thread_create(output_filter, rounds);      //@ ideal
    eos_cleanup(cleanup_delay);
    thread_join(t);
    print(conn->sent);
    free(b);
    free(conn);
    return 0;
}
"""


def _factory_45605(index: int) -> Workload:
    return Workload(args=(600, 160), seed=45000 + index, switch_prob=0.02,
                    max_steps=400_000)


@register("apache-45605")
def make_45605() -> BugSpec:
    """Build this bug's :class:`BugSpec` (registered factory)."""
    return BugSpec(
        bug_id="apache-45605",
        software="Apache httpd",
        software_version="2.2.9",
        software_loc=224_533,
        bug_db_id="45605",
        kind="concurrency",
        failure_kind=FailureKind.SEGFAULT,
        description=("output filter checks conn->brigade then dereferences "
                     "it; EOS cleanup NULLs the brigade in between (RWR)"),
        source=SOURCE_45605,
        workload_factory=_factory_45605,
        failing_probe=Workload(args=(600, 160), seed=45004,
                               switch_prob=0.02, max_steps=400_000),
        module_name="apache45605",
    )
