"""Extension bug: thread-pool work queue with a null task handoff.

Models the futures-style cancellation bug: a submitter fills task slots
that pool workers drain, and task *cancellation* tombstones the slot by
storing a null pointer — without clearing the slot's ready flag.  A
worker that claims the slot copies the (null) task pointer into its
current-task cell and dereferences it in the run loop: a classic null
handoff, where the dereference site is three hops away from the line
that actually created the null.

The crash itself is an ordinary segfault in the null page; what the
detection subsystem adds is the *origin chain*.  With the Casper-style
null-origin tracer attached (``detectors=("nullorigin",)``) the report is
reclassified :data:`FailureKind.NULL_DEREF` and carries
origin → propagation → dereference hops: the cancel store in ``main``,
the handoff into ``cur`` in ``take``, and the faulting load in ``run_task``.

Whether a run fails is input-dependent (like the corpus's Curl entry):
cancellation strikes whenever the workload's request stream hashes a
task onto the cancel path, which a minority of workloads do.

Not part of the paper's Table 1 (``extra=True``); second of the
detection-subsystem corpus bugs.
"""

from __future__ import annotations

from ..registry import BugSpec, register
from ...core.workload import Workload
from ...runtime.failures import FailureKind

SOURCE = """\
// Thread-pool model: submitter fills slots, two workers drain them.
struct task {
    int payload;
    int weight;
};

struct pool {
    void* mut;
    struct task* slots[8];
    int ready[8];
    int taken[8];
    int submitted;
    int shutdown;
};

struct pool* pool;
struct task* cur = 0;    // the claiming worker's current-task handoff cell
int checksum = 0;

int run_task(struct task* t) {
    int w = t->weight;                                     //@ ideal
    int acc = t->payload;
    int i;
    for (i = 0; i < w; i++) {
        acc = (acc * 31 + i) % 32749;
    }
    return acc;
}

void worker(int id) {
    int more = 1;
    while (more) {
        int slot = 0 - 1;
        mutex_lock(pool->mut);
        int i;
        for (i = 0; i < 8; i++) {
            if (pool->ready[i] && pool->taken[i] == 0) {
                pool->taken[i] = 1;
                slot = i;
            }
        }
        if (pool->shutdown && slot < 0) {
            more = 0;
        }
        mutex_unlock(pool->mut);
        if (slot >= 0) {
            cur = pool->slots[slot];                        //@ ideal
            int r = run_task(cur);                          //@ ideal
            mutex_lock(pool->mut);
            checksum = checksum + r + id;
            pool->ready[slot] = 0;
            pool->taken[slot] = 0;
            mutex_unlock(pool->mut);
        }
    }
}

int main(int ntask, int key) {
    pool = malloc(sizeof(struct pool));                    //@ ideal
    pool->mut = mutex_create();
    int i;
    for (i = 0; i < 8; i++) {
        pool->slots[i] = 0;
        pool->ready[i] = 0;
        pool->taken[i] = 0;
    }
    pool->submitted = 0;
    pool->shutdown = 0;
    int t1 = thread_create(worker, 1);
    int t2 = thread_create(worker, 2);
    for (i = 0; i < ntask; i++) {
        struct task* t = malloc(sizeof(struct task));
        t->payload = i * 7 + key;
        t->weight = 20 + i % 9;
        mutex_lock(pool->mut);
        int slot = i % 8;
        pool->slots[slot] = t;                              //@ ideal
        if ((i * 37 + key) % 101 == 0) {
            // BUG: cancellation tombstones the slot with a null task
            // but leaves the ready flag set -- a worker will claim it.
            pool->slots[slot] = 0;                          //@ root
        }
        pool->ready[slot] = 1;
        mutex_unlock(pool->mut);
        usleep(2);
    }
    mutex_lock(pool->mut);
    pool->shutdown = 1;
    mutex_unlock(pool->mut);
    thread_join(t1);
    thread_join(t2);
    print(checksum);
    mutex_destroy(pool->mut);
    free(pool);
    return 0;
}
"""


def _workload_factory(index: int) -> Workload:
    # Heavy traffic: 24 tasks through 8 slots; ``key`` rotates which (if
    # any) submissions hash onto the cancel path.
    key = index % 101
    return Workload(args=(24, key), seed=93000 + index, switch_prob=0.02,
                    max_steps=400_000)


@register("tpqueue-1")
def make_spec() -> BugSpec:
    """Build this bug's :class:`BugSpec` (registered factory)."""
    return BugSpec(
        bug_id="tpqueue-1",
        software="Thread-pool queue (futures model)",
        software_version="N/A",
        software_loc=9_400,
        bug_db_id="N/A",
        kind="concurrency",
        failure_kind=FailureKind.NULL_DEREF,
        description=("task cancellation nulls the slot pointer but leaves "
                     "its ready flag set; a worker claims the tombstone, "
                     "hands the null through its current-task cell, and "
                     "dereferences it"),
        source=SOURCE,
        workload_factory=_workload_factory,
        failing_probe=Workload(args=(24, 64), seed=93001,
                               switch_prob=0.02, max_steps=400_000),
        module_name="tpqueue",
        extra=True,
        detectors=("nullorigin",),
    )
