"""Extension bug: the condition-variable variant of the pbzip2 teardown.

Real pbzip2 coordinates its queue with ``pthread_cond_wait`` /
``pthread_cond_broadcast``, not polling; the use-after-free family of bugs
in its teardown path includes destroying synchronization objects while a
consumer is still inside a wait.  This extension-corpus entry models that
directly (the Table-1 entry ``pbzip2-1`` models the simpler
polling/mutex-pointer variant the paper's Fig. 1 shows):

``main`` produces blocks, broadcasts "done", spin-checks that the queue
looks drained, and destroys the condition variable — without joining the
consumer, which may still be inside ``cond_wait`` (woken, but not yet
through the mutex-reacquire step).  The consumer's wait then touches freed
condvar memory.

Not part of the paper's evaluation tables (``extra=True``); exercises the
condvar substrate end-to-end through the full Gist pipeline.
"""

from __future__ import annotations

from ..registry import BugSpec, register
from ...core.workload import Workload
from ...runtime.failures import FailureKind

SOURCE = """\
// pbzip2 (condvar variant): destroy a condvar mid-wait.
struct queue {
    void* mut;
    void* nonempty;
    int count;
    int done;
    int consumed;
};

struct queue* fifo;
int total_out = 0;

int read_block(int index, int rounds) {
    // File input: the producer is the slow side, so consumers park in
    // cond_wait between blocks (as in real pbzip2 with fast cores).
    int acc = index * 7 + 3;
    int i;
    for (i = 0; i < rounds; i++) {
        acc = (acc * 17 + index) % 32749;
    }
    return acc;
}

void consumer(int id) {
    int more = 1;                                  //@ ideal
    while (more) {                                     //@ ideal
        mutex_lock(fifo->mut);                         //@ ideal
        while (fifo->count == 0 && fifo->done == 0) { //@ ideal
            cond_wait(fifo->nonempty, fifo->mut);      //@ ideal acc=1
        }
        if (fifo->count > 0) {
            fifo->count = fifo->count - 1;
            fifo->consumed = fifo->consumed + 1;
            total_out = total_out + fifo->consumed + id;
        }
        if (fifo->done && fifo->count == 0) {
            more = 0;
        }
        mutex_unlock(fifo->mut);
    }
}

int main(int nblocks, int rounds) {
    fifo = malloc(sizeof(struct queue));               //@ ideal
    fifo->mut = mutex_create();                        //@ ideal
    fifo->nonempty = cond_create();                    //@ ideal
    fifo->count = 0;                                   //@ ideal
    fifo->done = 0;                                    //@ ideal
    fifo->consumed = 0;
    int t1 = thread_create(consumer, 1);               //@ ideal
    int t2 = thread_create(consumer, 2);               //@ ideal
    int i;
    for (i = 0; i < nblocks; i++) {
        int block = read_block(i, rounds);
        mutex_lock(fifo->mut);
        fifo->count = fifo->count + 1;
        cond_signal(fifo->nonempty);
        mutex_unlock(fifo->mut);
    }
    mutex_lock(fifo->mut);
    fifo->done = 1;                                    //@ ideal
    cond_broadcast(fifo->nonempty);                    //@ ideal
    mutex_unlock(fifo->mut);
    // BUG: poll until the queue looks drained, then tear down the condvar
    // without joining -- a woken consumer may still be inside cond_wait,
    // waiting to reacquire the mutex.
    while (fifo->count > 0) {
        usleep(3);
    }
    usleep(9);
    cond_destroy(fifo->nonempty);                      //@ root acc=2
    thread_join(t1);
    thread_join(t2);
    mutex_destroy(fifo->mut);
    free(fifo);
    print(total_out);
    return 0;
}
"""


def _workload_factory(index: int) -> Workload:
    return Workload(args=(8, 90), seed=77000 + index, switch_prob=0.03,
                    max_steps=400_000)


@register("pbzip2-cv")
def make_spec() -> BugSpec:
    """Build this bug's :class:`BugSpec` (registered factory)."""
    return BugSpec(
        bug_id="pbzip2-cv",
        software="Pbzip2",
        software_version="0.9.4",
        software_loc=1_492,
        bug_db_id="N/A",
        kind="concurrency",
        failure_kind=FailureKind.USE_AFTER_FREE,
        description=("condvar variant of the teardown bug: main destroys "
                     "the condition variable while the consumer is still "
                     "inside cond_wait (extension corpus)"),
        source=SOURCE,
        workload_factory=_workload_factory,
        failing_probe=Workload(args=(8, 90), seed=77001,
                               switch_prob=0.03, max_steps=400_000),
        module_name="pbzip2cv",
        extra=True,
    )
