"""Pbzip2 bug #1 — the paper's running example (Fig. 1).

Real bug: pbzip2 0.9.4's ``main`` destroys the queue mutex (``free(f->mut);
f->mut = NULL;``) once the queue looks drained, while a consumer thread can
still be about to call ``mutex_unlock(f->mut)`` — a use-after-free /
NULL-dereference ordering bug that segfaults.  Developers fixed it with
synchronization that makes ``cons`` finish before ``main`` tears down.

Model: a producer (``main``) enqueues compression blocks; a ``consumer``
thread dequeues and "compresses" them (a checksum kernel stands in for
BZ2_bzCompress).  ``main`` polls the unlocked ``count`` field, and as soon
as the queue looks empty it destroys the mutex and NULLs the pointer —
without joining the consumer first.  The consumer's final
``mutex_unlock(fifo->mut)`` races with that teardown.
"""

from __future__ import annotations

from ..registry import BugSpec, register
from ...core.workload import Workload
from ...runtime.failures import FailureKind

SOURCE = """\
// pbzip2 (model): producer/consumer with premature mutex teardown.
struct queue {
    void* mut;
    int head;
    int tail;
    int count;
    int done;
    int items[8];
};

struct queue* fifo;
int total_out = 0;

int compress_block(int data, int rounds) {
    // Stand-in for BZ2_bzCompress: a deterministic checksum kernel.
    int acc = data + 12345;
    int i;
    for (i = 0; i < rounds; i++) {
        acc = (acc * 31 + i) % 65521;
        acc = acc ^ (i << 3);
    }
    return (acc % 251) + 1;
}

int read_block(int index, int rounds) {
    // Stand-in for file input: derive block bytes from the index.
    int acc = index * 7 + 3;
    int i;
    for (i = 0; i < rounds; i++) {
        acc = (acc * 17 + index) % 32749;
    }
    return acc;
}

void consumer(int rounds) {
    int more = 1;
    while (more) {                                     //@ ideal
        mutex_lock(fifo->mut);
        int avail = fifo->count;
        if (avail > 0) {
            int block = fifo->items[fifo->head % 8];
            fifo->head = fifo->head + 1;
            int out = compress_block(block, rounds);
            total_out = total_out + out;
            fifo->count = fifo->count - 1;
        }
        if (fifo->done && fifo->count == 0) {
            more = 0;
        }
        mutex_unlock(fifo->mut);                       //@ ideal acc=3
        if (avail == 0 && more) {
            usleep(4);
        }
    }
}

int main(int nblocks, int rounds) {
    fifo = malloc(sizeof(struct queue));               //@ ideal
    fifo->mut = mutex_create();                        //@ ideal acc=1
    fifo->head = 0;
    fifo->tail = 0;
    fifo->count = 0;
    fifo->done = 0;
    int t = thread_create(consumer, rounds);           //@ ideal
    int i;
    for (i = 0; i < nblocks; i++) {
        int block = read_block(i, rounds / 2);
        mutex_lock(fifo->mut);
        fifo->items[fifo->tail % 8] = block;
        fifo->tail = fifo->tail + 1;
        fifo->count = fifo->count + 1;
        mutex_unlock(fifo->mut);
    }
    fifo->done = 1;
    // BUG: poll the (unlocked) count and tear the mutex down as soon as
    // the queue looks drained -- the consumer may still be holding it.
    while (fifo->count > 0) {
        usleep(3);
    }
    mutex_destroy(fifo->mut);                          //@ ideal
    fifo->mut = NULL;                                  //@ root acc=2
    thread_join(t);
    free(fifo);
    print(total_out);
    return 0;
}
"""


def _workload_factory(index: int) -> Workload:
    return Workload(args=(10, 120), seed=9000 + index, switch_prob=0.02,
                    max_steps=400_000)


@register("pbzip2-1")
def make_spec() -> BugSpec:
    """Build this bug's :class:`BugSpec` (registered factory)."""
    return BugSpec(
        bug_id="pbzip2-1",
        software="Pbzip2",
        software_version="0.9.4",
        software_loc=1_492,
        bug_db_id="N/A",
        kind="concurrency",
        failure_kind=FailureKind.SEGFAULT,
        description=("use-after-free of the queue mutex: main frees/NULLs "
                     "f->mut while the consumer still unlocks it (Fig. 1)"),
        source=SOURCE,
        workload_factory=_workload_factory,
        failing_probe=Workload(args=(10, 120), seed=9001,
                               switch_prob=0.02, max_steps=400_000),
        module_name="pbzip2",
    )
