"""The two Cppcheck bugs of Table 1 — sequential, input-dependent.

- **cppcheck-3238** (Cppcheck 1.52): the simplifier walks the token stream
  and, on a ``::`` token, consumes the *following* token without checking
  that one exists; source text ending in ``::`` reads past the end of the
  token array.
- **cppcheck-2782** (Cppcheck 1.48): template simplification follows
  ``tok->next->next`` after matching ``template <``; when the match sits at
  the end of the list the second ``next`` is NULL and the field access
  segfaults.

Both model Cppcheck's real architecture at miniature scale: a tokenizer
producing a token stream, then simplification passes over it.  The failing
inputs are rare members of an otherwise healthy input mix.
"""

from __future__ import annotations

from ..registry import BugSpec, register
from ...core.workload import Workload
from ...runtime.failures import FailureKind

# Token kind numbering shared by both models (kept tiny on purpose):
# 1 ident, 2 number, 3 '(', 4 ')', 5 '{', 6 '}', 7 ';', 8 '::',
# 9 'template', 10 '<', 11 '>', 0 end.

SOURCE_3238 = """\
// cppcheck 1.52 (model): '::'-merge reads past the token array.
struct tokens {
    int count;
    int kinds[64];
    int values[64];
};

int checked = 0;
int findings = 0;

int classify(char* src, int i) {
    int c = src[i];
    if (c == ':') { return 8; }
    if (c == '(') { return 3; }
    if (c == ')') { return 4; }
    if (c == '{') { return 5; }
    if (c == '}') { return 6; }
    if (c == ';') { return 7; }
    if (c >= '0' && c <= '9') { return 2; }
    return 1;
}

void tokenize(struct tokens* toks, char* src) {
    int i = 0;
    int n = 0;
    while (src[i] != 0 && n < 64) {
        if (src[i] == ' ') {
            i = i + 1;
            continue;
        }
        int kind = classify(src, i);
        if (kind == 8) {
            i = i + 1;  // '::' is two characters
        }
        toks->kinds[n] = kind;
        toks->values[n] = src[i];
        n = n + 1;
        i = i + 1;
    }
    toks->count = n;                                   //@ ideal
}

int simplify_scope(struct tokens* toks) {
    // Merge 'A :: B' into one scoped name.  BUG: when '::' is the last
    // token, kinds[i + 1] reads past the initialized region.
    int merged = 0;
    int i;
    for (i = 0; i < toks->count; i++) {                //@ ideal
        if (toks->kinds[i] == 8) {                     //@ ideal
            int next = toks->kinds[i + 1];             //@ root
            assert(next != 0, "token after ::");       //@ ideal
            merged = merged + next;
        }
    }
    return merged;
}

int analyze(struct tokens* toks, int rounds) {
    // The actual checking passes: deterministic work over the token
    // *values* (the kind row is the simplifier's business).
    int acc = toks->count;
    int i;
    for (i = 0; i < rounds; i++) {
        acc = (acc * 31 + toks->values[i % 64]) % 39979;
    }
    return acc;
}

int main(char* src, int rounds) {
    struct tokens* toks = malloc(sizeof(struct tokens));
    toks->count = 0;
    memset(toks, 0, sizeof(struct tokens));
    tokenize(toks, src);
    findings = findings + simplify_scope(toks);
    checked = checked + analyze(toks, rounds);
    print(findings);
    print(checked);
    free(toks);
    return 0;
}
"""

_INPUTS_3238 = [
    "int a ; a = 1 ;",
    "ns::f ( ) { x = 2 ; }",
    "a::b::c ( 1 ) ;",
    "while ( x ) { y ; }",
    "class X ::",          # the killer: '::' as the final token
    "f ( a::b ) ;",
    "x = 5 ; g ( ) ;",
]


def _factory_3238(index: int) -> Workload:
    return Workload(args=(_INPUTS_3238[index % len(_INPUTS_3238)], 2600),
                    seed=32000 + index, switch_prob=0.0, max_steps=400_000)


@register("cppcheck-3238")
def make_3238() -> BugSpec:
    """Build this bug's :class:`BugSpec` (registered factory)."""
    return BugSpec(
        bug_id="cppcheck-3238",
        software="Cppcheck",
        software_version="1.52",
        software_loc=86_215,
        bug_db_id="3238",
        kind="sequential",
        failure_kind=FailureKind.ASSERTION,
        description=("scope simplification consumes the token after '::' "
                     "without checking it exists; input ending in '::' "
                     "trips the token-stream invariant"),
        source=SOURCE_3238,
        workload_factory=_factory_3238,
        failing_probe=Workload(args=("class X ::", 2600), seed=1,
                               switch_prob=0.0, max_steps=400_000),
        module_name="cppcheck3238",
    )


SOURCE_2782 = """\
// cppcheck 1.48 (model): template simplification derefs a NULL next link.
struct token {
    int kind;
    int value;
    struct token* next;
};

int simplified = 0;
int checked = 0;

int classify(char* src, int i) {
    int c = src[i];
    if (c == 't') { return 9; }
    if (c == '<') { return 10; }
    if (c == '>') { return 11; }
    if (c == '(') { return 3; }
    if (c == ')') { return 4; }
    if (c == ';') { return 7; }
    if (c >= '0' && c <= '9') { return 2; }
    return 1;
}

struct token* tokenize(char* src) {
    struct token* head = NULL;
    struct token* tail = NULL;
    int i = 0;
    while (src[i] != 0) {
        if (src[i] != ' ') {
            struct token* t = malloc(sizeof(struct token));
            t->kind = classify(src, i);
            t->value = src[i];
            t->next = NULL;                            //@ ideal
            if (tail == NULL) {
                head = t;
            } else {
                tail->next = t;
            }
            tail = t;
        }
        i = i + 1;
    }
    return head;
}

int simplify_templates(struct token* head) {
    // Rewrite 'template < T >' sequences.  BUG: after matching
    // 'template <', the code unconditionally reads tok->next->next->kind;
    // when '<' ends the list, tok->next->next is NULL.
    int rewrites = 0;
    struct token* tok = head;
    while (tok != NULL) {                              //@ ideal
        if (tok->kind == 9 && tok->next != NULL) {     //@ ideal
            if (tok->next->kind == 10) {               //@ ideal
                struct token* arg = tok->next->next;   //@ root
                int k = arg->kind;                     //@ ideal
                rewrites = rewrites + k;
            }
        }
        tok = tok->next;                               //@ ideal
    }
    return rewrites;
}

int count_tokens(struct token* head, int rounds) {
    int n = 0;
    struct token* tok = head;
    while (tok != NULL) {
        n = n + 1;
        tok = tok->next;
    }
    int acc = n;
    int i;
    for (i = 0; i < rounds; i++) {
        acc = (acc * 37 + n) % 48611;
    }
    return acc;
}

int main(char* src, int rounds) {
    struct token* head = tokenize(src);
    simplified = simplified + simplify_templates(head);
    checked = checked + count_tokens(head, rounds);
    print(simplified);
    print(checked);
    return 0;
}
"""

_INPUTS_2782 = [
    "f ( 1 ) ;",
    "t < 9 > x ;",
    "a b ; t < 2 > ;",
    "x ( ) ; y ( ) ;",
    "a ; t <",            # the killer: 'template <' at end of list
    "t < 3 > f ( ) ;",
]


def _factory_2782(index: int) -> Workload:
    return Workload(args=(_INPUTS_2782[index % len(_INPUTS_2782)], 2400),
                    seed=27000 + index, switch_prob=0.0, max_steps=400_000)


@register("cppcheck-2782")
def make_2782() -> BugSpec:
    """Build this bug's :class:`BugSpec` (registered factory)."""
    return BugSpec(
        bug_id="cppcheck-2782",
        software="Cppcheck",
        software_version="1.48",
        software_loc=76_009,
        bug_db_id="2782",
        kind="sequential",
        failure_kind=FailureKind.SEGFAULT,
        description=("template simplification reads tok->next->next "
                     "unconditionally; 'template <' at end of input makes "
                     "it NULL and the dereference segfaults"),
        source=SOURCE_2782,
        workload_factory=_factory_2782,
        failing_probe=Workload(args=("a ; t <", 2400), seed=1,
                               switch_prob=0.0, max_steps=400_000),
        module_name="cppcheck2782",
    )
