"""SQLite ticket #1672 — a schema-version read/write race.

Real bug: SQLite 3.3.3's thread handling let a connection be used from a
second thread while the first was mid-update, tripping internal asserts.

Model: a writer thread performs a two-step schema update on a shared
database handle — it bumps ``db->version`` to an odd value (update in
progress), rewrites the schema (a kernel), then bumps it back to even
(stable).  A reader validates that it never observes an in-progress update:
``assert(version % 2 == 0)``.  The race window is exactly the schema
rewrite; the failing interleaving is the paper's RW data-race pattern.
"""

from __future__ import annotations

from ..registry import BugSpec, register
from ...core.workload import Workload
from ...runtime.failures import FailureKind

SOURCE = """\
// sqlite (model): reader observes a mid-flight schema update.
struct db {
    int version;
    int ncols;
    int rows_read;
};

struct db* db;
int query_total = 0;

int rewrite_schema(int rounds) {
    int acc = 3407;
    int i;
    for (i = 0; i < rounds; i++) {
        acc = (acc * 131 + i) % 52361;
    }
    return acc;
}

int run_query(int q, int rounds) {
    int acc = q * 17 + 5;
    int i;
    for (i = 0; i < rounds; i++) {
        acc = (acc * 31 + q) % 46691;
    }
    return acc;
}

void writer(int rounds) {
    int u;
    for (u = 0; u < 3; u++) {
        // Parse the DDL statement, then apply the two-step schema change:
        // version is odd while the update is in flight.
        rewrite_schema(rounds * 2);
        db->version = db->version + 1;                 //@ root acc=1
        db->ncols = db->ncols + rewrite_schema(rounds) % 3 + 1;
        db->version = db->version + 1;                 //@ ideal
        usleep(3);
    }
}

void reader(int rounds) {
    int q;
    for (q = 0; q < 4; q++) {                          //@ ideal
        query_total = query_total + run_query(q, rounds);
        int v = db->version;                           //@ ideal acc=2
        assert(v % 2 == 0, "schema stable during read");   //@ ideal
        db->rows_read = db->rows_read + 1;
    }
}

int main(int write_rounds, int read_rounds) {
    db = malloc(sizeof(struct db));
    db->version = 2;                                   //@ ideal
    db->ncols = 5;
    db->rows_read = 0;
    int tw = thread_create(writer, write_rounds);      //@ ideal
    int tr = thread_create(reader, read_rounds);       //@ ideal
    thread_join(tw);
    thread_join(tr);
    print(query_total);
    print(db->version);
    free(db);
    return 0;
}
"""


def _workload_factory(index: int) -> Workload:
    return Workload(args=(20, 95), seed=16000 + index, switch_prob=0.02,
                    max_steps=400_000)


@register("sqlite-1672")
def make_spec() -> BugSpec:
    """Build this bug's :class:`BugSpec` (registered factory)."""
    return BugSpec(
        bug_id="sqlite-1672",
        software="SQLite",
        software_version="3.3.3",
        software_loc=47_150,
        bug_db_id="1672",
        kind="concurrency",
        failure_kind=FailureKind.ASSERTION,
        description=("reader observes the odd (in-progress) schema version "
                     "mid-update: an RW race on db->version"),
        source=SOURCE,
        workload_factory=_workload_factory,
        failing_probe=Workload(args=(20, 95), seed=16001,
                               switch_prob=0.02, max_steps=400_000),
        module_name="sqlite",
    )
