"""Extension bug: event-loop server with a lock-free stats-counter race.

Models the classic worker-pool statistics race: an accept loop feeds a
mutex-protected request queue that two workers drain, and the per-request
accounting is split across two paths.  The slow path bumps the server's
``handled`` counter under the queue mutex; the *fast path* — cache-hit
responses that skip the heavy handler — bumps a global ``fast_hits``
counter **without any lock**, on the theory that "it's just a counter".
Two workers that take the fast path in overlapping windows race on the
read-modify-write, and increments are lost.

The program never crashes on its own: the lost update is silent, which is
exactly why this failure class needs the happens-before detector
(``detectors=("races",)``).  With the detector attached, the racing
accesses are reported as :data:`FailureKind.DATA_RACE` with both stacks.

Whether the two unlocked bumps are *happens-before concurrent* depends on
the schedule: each worker keeps acquiring the queue mutex between
requests, so a bump is ordered after the other thread's earlier bump
whenever a release→acquire chain slipped between them.  The race fires
only when both workers sit in their mutex-free handler windows at once,
which keeps the failure rate in the in-production regime.

Not part of the paper's Table 1 (``extra=True``); first of the
detection-subsystem corpus bugs.
"""

from __future__ import annotations

from ..registry import BugSpec, register
from ...core.workload import Workload
from ...runtime.failures import FailureKind

SOURCE = """\
// Event-loop server model: accept loop + two queue-draining workers.
struct server {
    void* mut;
    int queue[16];
    int head;
    int tail;
    int shutdown;
    int handled;      // slow-path stats, protected by mut
};

struct server* srv;
int fast_hits = 0;    // fast-path stats -- "just a counter", no lock

int handle(int req, int rounds) {
    // The heavy handler: parse + render, mutex-free by design.
    int acc = req * 13 + 7;
    int i;
    for (i = 0; i < rounds; i++) {
        acc = (acc * 131 + req) % 32749;
    }
    return acc;
}

void worker(int hot) {
    int more = 1;
    while (more) {
        int got = 0;
        int req = 0;
        mutex_lock(srv->mut);                              //@ ideal
        if (srv->head < srv->tail) {
            req = srv->queue[srv->head % 16];               //@ ideal
            srv->head = srv->head + 1;
            got = 1;
        }
        if (srv->shutdown && srv->head >= srv->tail) {
            more = 0;
        }
        mutex_unlock(srv->mut);                            //@ ideal
        if (got) {
            int r = handle(req, 40);
            if (req % hot == 0) {                          //@ ideal
                // BUG: fast-path cache hits skip the lock for "speed".
                fast_hits = fast_hits + 1;                  //@ root
            } else {
                mutex_lock(srv->mut);
                srv->handled = srv->handled + r % 2;
                mutex_unlock(srv->mut);
            }
        }
    }
}

int main(int nreq, int hot) {
    srv = malloc(sizeof(struct server));                   //@ ideal
    srv->mut = mutex_create();
    srv->head = 0;
    srv->tail = 0;
    srv->shutdown = 0;
    srv->handled = 0;
    int t1 = thread_create(worker, hot);                   //@ ideal
    int t2 = thread_create(worker, hot);                   //@ ideal
    int i;
    for (i = 0; i < nreq; i++) {
        mutex_lock(srv->mut);
        if (srv->tail - srv->head < 16) {
            srv->queue[srv->tail % 16] = i;
            srv->tail = srv->tail + 1;
        }
        mutex_unlock(srv->mut);
    }
    mutex_lock(srv->mut);
    srv->shutdown = 1;
    mutex_unlock(srv->mut);
    thread_join(t1);
    thread_join(t2);
    print(fast_hits + srv->handled);
    mutex_destroy(srv->mut);
    free(srv);
    return 0;
}
"""


def _workload_factory(index: int) -> Workload:
    # Heavy traffic: 24 requests through the queue; ``hot`` sets how many
    # take the lock-free fast path (every hot-th request).
    hot = 2 + index % 2
    return Workload(args=(24, hot), seed=91000 + index, switch_prob=0.10,
                    max_steps=400_000)


@register("evloop-1")
def make_spec() -> BugSpec:
    """Build this bug's :class:`BugSpec` (registered factory)."""
    return BugSpec(
        bug_id="evloop-1",
        software="Event-loop server (worker-pool model)",
        software_version="N/A",
        software_loc=28_000,
        bug_db_id="N/A",
        kind="concurrency",
        failure_kind=FailureKind.DATA_RACE,
        description=("fast-path cache-hit accounting bumps a shared "
                     "counter outside the queue mutex; two workers race "
                     "on the read-modify-write and lose increments"),
        source=SOURCE,
        workload_factory=_workload_factory,
        failing_probe=Workload(args=(24, 2), seed=91000,
                               switch_prob=0.10, max_steps=400_000),
        module_name="evloop",
        extra=True,
        detectors=("races",),
    )
