"""Curl bug #965 — the paper's sequential example (Fig. 7).

Real bug: passing a URL with unbalanced curly braces ("{}{") to curl's URL
globbing made ``urls->current`` NULL inside ``next_url``, and the subsequent
``strlen(urls->current)`` segfaulted.  Developers fixed it by rejecting
unbalanced braces in the input.

Model: ``glob_url`` counts brace groups to size the expansion list but only
fills entries for *balanced* groups, so an unbalanced input leaves a NULL
hole; ``next_url`` walks the list and calls ``strlen`` on the current entry.
The failure is purely input-dependent (no schedule sensitivity): exactly the
workloads carrying a malformed URL fail.
"""

from __future__ import annotations

from ..registry import BugSpec, register
from ...core.workload import Workload
from ...runtime.failures import FailureKind

SOURCE = """\
// curl (model): URL globbing with unbalanced braces.
struct urlset {
    char* current;
    int count;
    int index;
    char* list[16];
};

int total_len = 0;
int fetched = 0;

int fetch(char* url, int rounds) {
    // Stand-in for the transfer: hash the url bytes, then spin.
    int h = 5381;
    int i = 0;
    while (url[i] != 0) {
        h = (h * 33 + url[i]) % 100003;
        i = i + 1;
    }
    int j;
    for (j = 0; j < rounds; j++) {
        h = (h * 31 + j) % 99991;
    }
    return h;
}

int glob_url(struct urlset* set, char* url) {
    int opens = 0;
    int closes = 0;
    int i = 0;
    while (url[i] != 0) {
        if (url[i] == '{') {
            opens = opens + 1;
        }
        if (url[i] == '}') {
            closes = closes + 1;
        }
        i = i + 1;
    }
    // One expansion per brace group plus the base url.
    int n = opens + 1;
    if (n > 16) {
        n = 16;
    }
    set->count = n;
    // BUG: only *balanced* groups produce list entries; an unbalanced
    // input leaves NULL holes that next_url will hand to strlen.
    int filled = closes + 1;
    if (filled > n) {
        filled = n;
    }
    int k;
    for (k = 0; k < filled; k++) {
        set->list[k] = url;
    }
    return n;
}

char* next_url(struct urlset* set) {
    if (set->index >= set->count) {                     //@ ideal
        return NULL;
    }
    set->current = set->list[set->index];               //@ ideal acc=1 rootval=0
    set->index = set->index + 1;
    int len = strlen(set->current);                     //@ ideal acc=2 rootval=0
    total_len = total_len + len;
    return set->current;                                //@ ideal
}

void operate(char* url, int rounds) {
    struct urlset* urls = malloc(sizeof(struct urlset));
    urls->current = NULL;
    urls->count = 0;
    urls->index = 0;
    glob_url(urls, url);
    char* u = next_url(urls);                           //@ ideal
    while (u != NULL) {                                 //@ ideal
        fetched = fetched + fetch(u, rounds);
        u = next_url(urls);                             //@ ideal
    }
    free(urls);
}

int main(char* url, int rounds) {
    operate(url, rounds);
    print(total_len);
    print(fetched);
    return 0;
}
"""

#: Most traffic is well-formed; roughly 1 in 6 runs carries the bad input
#: (in-production failures are the minority of runs, §2).
_URLS = [
    "http://example.com/{a,b}",
    "http://example.com/files/{x}",
    "http://example.com/plain",
    "http://mirror.net/{one,two}",
    "{}{",
    "http://example.com/{q,r}/end",
]


def _workload_factory(index: int) -> Workload:
    url = _URLS[index % len(_URLS)]
    return Workload(args=(url, 400), seed=17000 + index,
                    switch_prob=0.0, max_steps=400_000)


@register("curl-965")
def make_spec() -> BugSpec:
    """Build this bug's :class:`BugSpec` (registered factory)."""
    return BugSpec(
        bug_id="curl-965",
        software="Curl",
        software_version="7.21",
        software_loc=81_658,
        bug_db_id="965",
        kind="sequential",
        failure_kind=FailureKind.SEGFAULT,
        description=("unbalanced curly braces in the URL glob leave "
                     "urls->current NULL; strlen(NULL) segfaults (Fig. 7)"),
        source=SOURCE,
        workload_factory=_workload_factory,
        failing_probe=Workload(args=("{}{", 400), seed=1,
                               switch_prob=0.0, max_steps=400_000),
        module_name="curl",
    )
