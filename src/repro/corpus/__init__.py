"""The evaluation bug corpus: models of the paper's 11 bugs (Table 1)."""

from .registry import (
    BugSpec,
    CorpusError,
    all_bug_ids,
    all_bugs,
    build_ideal_sketch,
    get_bug,
    parse_annotations,
)

__all__ = [
    "BugSpec",
    "CorpusError",
    "all_bug_ids",
    "all_bugs",
    "build_ideal_sketch",
    "get_bug",
    "parse_annotations",
]
