"""Statistical ranking of failure predictors (§3.3).

Gist computes, per predictor:

- precision ``P``: of the runs where the predictor held, how many failed;
- recall ``R``: of the failing runs, how many exhibited the predictor;

and ranks by the F-measure ``F_β = (1 + β²)·P·R / (β²·P + R)`` with
**β = 0.5**, deliberately favouring precision: "its primary aim is to not
confuse the developers with potentially erroneous failure predictors".
The β ablation test shows rankings flip at β = 2 exactly as that design
choice predicts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .predictors import Predictor

DEFAULT_BETA = 0.5


@dataclass(slots=True)
class PredictorStats:
    """Occurrence counts and derived scores for one predictor."""

    predictor: Predictor
    failing_with: int = 0
    successful_with: int = 0
    precision: float = 0.0
    recall: float = 0.0
    f_measure: float = 0.0


def f_measure(precision: float, recall: float,
              beta: float = DEFAULT_BETA) -> float:
    """Weighted harmonic mean of precision and recall."""
    if precision <= 0.0 and recall <= 0.0:
        return 0.0
    b2 = beta * beta
    denom = b2 * precision + recall
    if denom == 0.0:
        return 0.0
    return (1.0 + b2) * precision * recall / denom


class PredictorRanker:
    """Accumulates per-run predictor sets and ranks by F-measure.

    ``failure_pc`` breaks F-measure ties by proximity to the failing
    instruction: when two predictors correlate equally, the one nearest the
    failure is shown (the paper leans on the same locality observation —
    "root causes of most bugs are close to the failure locations", §3.2.1).
    """

    def __init__(self, beta: float = DEFAULT_BETA,
                 failure_pc: Optional[int] = None) -> None:
        if beta <= 0:
            raise ValueError("beta must be positive")
        self.beta = beta
        self.failure_pc = failure_pc
        self.total_failing = 0
        self.total_successful = 0
        # Counters, not plain dicts: merge folds whole shard partials with
        # one C-speed ``Counter.update`` pass instead of a per-key loop.
        self._failing_counts: Counter = Counter()
        self._successful_counts: Counter = Counter()

    # -- accumulation ----------------------------------------------------------

    def add_run(self, predictors: Iterable[Predictor], failed: bool,
                weight: int = 1) -> None:
        """Count one run (or, with ``weight`` > 1, one *cohort* of runs).

        A cohort endpoint stands in for ``weight`` real clients whose runs
        all exhibited the same outcome and predictor set; folding the
        multiplicity here is what lets a campaign simulate fleets far
        larger than the number of runs it actually executes.  Scores are
        ratios of these counts, so a uniform weight leaves every
        precision/recall/F-measure unchanged.
        """
        if weight < 1:
            raise ValueError("weight must be >= 1")
        seen = set(predictors)
        if failed:
            self.total_failing += weight
            counts = self._failing_counts
        else:
            self.total_successful += weight
            counts = self._successful_counts
        for p in seen:
            counts[p] = counts.get(p, 0) + weight

    def merge(self, other: "PredictorRanker") -> None:
        """Fold another ranker's counts into this one.

        Rankers are pure occurrence counters, so accumulation is
        associative: a campaign may shard extraction across workers (or
        AsT iterations) and merge the partial counts without changing any
        score.  ``beta``/``failure_pc`` must match — merging rankers with
        different scoring parameters is a bug, not a union.
        """
        if other.beta != self.beta or other.failure_pc != self.failure_pc:
            raise ValueError("cannot merge rankers with different "
                             "beta/failure_pc")
        self.total_failing += other.total_failing
        self.total_successful += other.total_successful
        self._failing_counts.update(other._failing_counts)
        self._successful_counts.update(other._successful_counts)

    @classmethod
    def from_runs(cls, runs: Sequence[Tuple],
                  beta: float = DEFAULT_BETA,
                  failure_pc: Optional[int] = None) -> "PredictorRanker":
        """Rebuild a ranker from scratch out of ``(predictors, failed)`` or
        ``(predictors, failed, weight)`` tuples — the reference the
        incremental path is tested against."""
        ranker = cls(beta=beta, failure_pc=failure_pc)
        for entry in runs:
            predictors, failed = entry[0], entry[1]
            weight = entry[2] if len(entry) > 2 else 1
            ranker.add_run(predictors, failed, weight=weight)
        return ranker

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "PredictorRanker":
        """Reconstruct a ranker from a :meth:`state` snapshot.

        The inverse of :meth:`state`: cross-shard merging round-trips each
        shard's partial counts through this pair (serialized over the
        canonical wire, see :mod:`repro.fleet.wire`) before folding them
        with :meth:`merge`.
        """
        ranker = cls(beta=state["beta"], failure_pc=state["failure_pc"])
        ranker.total_failing = state["total_failing"]
        ranker.total_successful = state["total_successful"]
        ranker._failing_counts = Counter(state["failing"])
        ranker._successful_counts = Counter(state["successful"])
        return ranker

    def state(self) -> Dict[str, Any]:
        """A comparable snapshot of the accumulated counts (test support:
        incrementally maintained == rebuilt from scratch)."""
        return {
            "beta": self.beta,
            "failure_pc": self.failure_pc,
            "total_failing": self.total_failing,
            "total_successful": self.total_successful,
            "failing": dict(self._failing_counts),
            "successful": dict(self._successful_counts),
        }

    def tracked_bytes(self) -> int:
        """Rough resident footprint of the tracked counts — O(1) to ask
        (dict sizes), used for the campaign's memory accounting.  Exact
        rankers grow with the distinct-predictor population; the streaming
        subclass caps this at its table capacity."""
        return (len(self._failing_counts)
                + len(self._successful_counts)) * 120

    # -- scoring ------------------------------------------------------------------

    def stats_for(self, predictor: Predictor) -> PredictorStats:
        f_with = self._failing_counts.get(predictor, 0)
        s_with = self._successful_counts.get(predictor, 0)
        held = f_with + s_with
        precision = f_with / held if held else 0.0
        recall = f_with / self.total_failing if self.total_failing else 0.0
        return PredictorStats(
            predictor=predictor,
            failing_with=f_with,
            successful_with=s_with,
            precision=precision,
            recall=recall,
            f_measure=f_measure(precision, recall, self.beta),
        )

    def _distance(self, predictor: Predictor) -> int:
        if self.failure_pc is None:
            return 0
        if predictor.kind in ("branch", "value", "vrange"):
            uids = [predictor.detail[0]]
        else:
            uids = [u for u in predictor.detail[1]]
        return min(abs(self.failure_pc - u) for u in uids) if uids else 0

    def ranked(self, kind: Optional[str] = None) -> List[PredictorStats]:
        """All predictors, best first.  Ties break deterministically: by
        proximity to the failure, then lexicographically."""
        everything = set(self._failing_counts) | set(self._successful_counts)
        if kind is not None:
            everything = {p for p in everything if p.kind == kind}
        scored = [self.stats_for(p) for p in everything]
        scored.sort(key=lambda s: (-s.f_measure, -s.precision,
                                   -s.failing_with,
                                   self._distance(s.predictor),
                                   repr(s.predictor.detail)))
        return scored

    def best(self, kind: Optional[str] = None) -> Optional[PredictorStats]:
        ranked = self.ranked(kind)
        return ranked[0] if ranked else None

    def best_per_kind(self) -> Dict[str, PredictorStats]:
        """The highest-ranked predictor of each kind — what the failure
        sketch highlights (§3.3: "the failure sketch presents the developer
        with the highest-ranked failure predictors for each type")."""
        out: Dict[str, PredictorStats] = {}
        for kind in ("branch", "value", "order", "vrange"):
            top = self.best(kind)
            if top is not None and top.f_measure > 0.0:
                out[kind] = top
        return out
