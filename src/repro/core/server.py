"""Gist's server side: slicing, patch generation, trace aggregation.

The server (Fig. 2's offline half) owns the static analyses and the
statistics.  One :class:`DiagnosisCampaign` tracks one failure identity from
the first report to the finished sketch:

① a failure report arrives → compute the static backward slice;
② plan instrumentation for the current AsT window and cut patches
   (splitting watchpoint candidates across clients when the window needs
   more than the 4 debug registers — §3.2.3's cooperative approach);
③ monitored runs stream back; matching failures count as recurrences;
④ refinement + predictor statistics;
⑤ a failure sketch per iteration; AsT doubles σ until the sketch satisfies
   the stop criterion.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..analysis.context import AnalysisContext
from ..analysis.slicing import StaticSlice
from ..detect.invariants import RANKER_KINDS, make_ranker
from ..hw.watchpoints import NUM_DEBUG_REGISTERS
from ..instrument.patch import Patch
from ..instrument.planner import InstrumentationPlan, InstrumentationPlanner
from ..lang.ir import Module
from ..runtime.failures import FailureReport
from .adaptive import AdaptiveSliceTracker, AstIteration, DEFAULT_SIGMA
from .predictors import extract_all
from .refinement import MonitoredRun, RefinementResult, refine
from .sketch import FailureSketch, build_sketch
from .stats import PredictorRanker
from .streaming import (STATS_KINDS, ReservoirSample, RollingWindowStats,
                        RunningRefinement, make_stream_ranker)

#: Rough per-retained-run / per-log-entry footprints for the campaign's
#: memory accounting (``tracked_state_bytes``): a MonitoredRun object with
#: its executed sequences, and one ``_predictor_log`` tuple.
_RUN_BYTES = 512
_LOG_ENTRY_BYTES = 160


@dataclass
class IterationResult:
    """Everything one AsT iteration produced."""

    iteration: int
    sigma: int
    plan: InstrumentationPlan
    refinement: RefinementResult
    sketch: Optional[FailureSketch]
    failing_runs: int
    successful_runs: int


class DiagnosisCampaign:
    """Server-side state for diagnosing one failure identity."""

    def __init__(self, server: "GistServer", bug: str,
                 first_report: FailureReport,
                 initial_sigma: int = DEFAULT_SIGMA,
                 key: Optional[str] = None,
                 stripes: int = 1) -> None:
        if stripes < 1:
            raise ValueError("need at least one ingest stripe")
        self.server = server
        self.bug = bug
        self.first_report = first_report
        self.identity = first_report.identity()
        #: The key exactly as the caller passed it (``None`` for solo
        #: campaigns).  Wire envelopes and journal records carry *this*
        #: value, so a journal replayed into a fresh server routes
        #: messages identically; ``self.key`` below is the display/cluster
        #: key with the default filled in.
        self.wire_key = key
        #: The campaign's failure-cluster key — what the control plane
        #: consistent-hashes across shards and what wire envelopes carry in
        #: their ``campaign`` field.  Defaults to the clusterer's site key.
        self.key = key if key is not None \
            else f"{first_report.kind.value}@{first_report.pc}"
        # Served by the shared context: a second campaign (or a second
        # whole diagnosis) for the same failing pc reuses the slice.
        self.slice: StaticSlice = server.context.slice_from(first_report.pc)
        self.tracker = AdaptiveSliceTracker(self.slice, initial_sigma)
        self.iterations: List[IterationResult] = []
        self.total_failure_recurrences = 1  # the bootstrap failure
        self._current: Optional[AstIteration] = None
        self._current_plan: Optional[InstrumentationPlan] = None
        self._runs: List[MonitoredRun] = []
        #: Predictor statistics for the whole campaign, maintained
        #: *incrementally*: every ingested run's predictor set is added
        #: exactly once and carries over across AsT iterations (predictor
        #: identity is structural, so facts observed under a σ=2 window
        #: stay valid when the window doubles).  The paper leans on exactly
        #: this accumulation — "Gist's refinement uses multiple failure
        #: recurrences" — and :meth:`rebuild_ranker` is the from-scratch
        #: reference the incremental path is tested against.
        #:
        #: The counts live in ``stripes`` partial rankers, one per ingest
        #: shard: a sharded control plane distributes monitored-run
        #: ingestion by endpoint, and :meth:`ranker` folds the partials
        #: through :class:`PredictorRanker.merge` — whose commutativity is
        #: what makes campaign results independent of the shard count.
        #: With ``stripes=1`` (the default, and the whole single-campaign
        #: path) there is exactly one partial and merge is the identity.
        self.stripes = stripes
        #: Statistics mode, inherited from the server: ``"exact"`` keeps
        #: the byte-identical reference behaviour; ``"streaming"`` swaps
        #: in bounded-memory sketched rankers, reservoir run retention,
        #: an incremental refinement aggregate, and sliced patches.
        self.stats_kind = server.stats_kind
        if self.stats_kind == "streaming":
            self._stripe_rankers = [
                make_stream_ranker(server.ranker_kind,
                                   failure_pc=first_report.pc)
                for _ in range(stripes)]
        else:
            self._stripe_rankers = [make_ranker(server.ranker_kind,
                                                failure_pc=first_report.pc)
                                    for _ in range(stripes)]
        self._merged_ranker: Optional[PredictorRanker] = None
        #: Per-ingest (predictor set, recurrence, weight) log, in ingest
        #: order — what :meth:`rebuild_ranker` replays.  Exact mode only:
        #: the log is O(runs), exactly what streaming mode exists to shed.
        self._predictor_log: List[Tuple[FrozenSet, bool, int]] = []
        #: Streaming-mode bounded evidence: a seeded reservoir of retained
        #: runs (campaign lifetime), the rolling recency window ring, and
        #: the per-iteration exact refinement aggregate.
        self.retained_runs: Optional[ReservoirSample] = None
        self.recent: Optional[RollingWindowStats] = None
        self._refinement_agg: Optional[RunningRefinement] = None
        if self.stats_kind == "streaming":
            self.retained_runs = ReservoirSample(
                seed=zlib.crc32(self.key.encode()))
            self.recent = RollingWindowStats(failure_pc=first_report.pc)
        #: High-water mark of :meth:`tracked_state_bytes` across ingests.
        self.peak_tracked_bytes = 0
        self._last_failing_run: Optional[MonitoredRun] = None
        # -- wire-facing hardening state (fleet transport) -----------------
        #: The patch epoch currently being monitored (== iteration number).
        self.epoch = 0
        #: Content digests of every monitored run already ingested: a
        #: duplicated message is a set lookup away from being a no-op.
        self._seen_digests: Set[str] = set()
        #: Endpoints that acknowledged the current epoch's patch.
        self.acked_endpoints: Set[int] = set()
        self.stale_runs_discarded = 0
        self.duplicate_runs_ignored = 0
        self.unmonitored_reports = 0

    # -- iteration lifecycle --------------------------------------------------

    def begin_iteration(self) -> Tuple[AstIteration, InstrumentationPlan]:
        if self.server.journal is not None:
            self.server.journal.append_begin_iteration(self.wire_key)
        self._current = self.tracker.begin_iteration()
        self._current_plan = self.server.planner.plan_window(
            self.slice, self._current.window_uids)
        self._runs = []
        if self.stats_kind == "streaming":
            # The refinement aggregate is per-iteration (like ``_runs``);
            # the reservoir and the window ring span the whole campaign.
            self._refinement_agg = RunningRefinement()
        # The ranker deliberately survives: predictor statistics carry
        # over across iterations instead of being rebuilt from scratch,
        # so runs ingested under earlier windows keep contributing.
        self._last_failing_run = None
        self.epoch = self._current.number
        self.acked_endpoints = set()
        return self._current, self._current_plan

    def make_patches(self, n_variants: int = 1) -> List[Patch]:
        """Cut patch variants for the current iteration.

        When the window has more watch candidates than debug registers, the
        candidates are split round-robin into ≤4-sized assignments, one per
        patch variant; the deployment hands different variants to different
        endpoints so that collectively everything is watched (§3.2.3).
        """
        assert self._current_plan is not None, "begin_iteration first"
        plan = self._current_plan
        # Streaming mode stamps the static slice into every patch so
        # endpoints slice their evidence client-side before reporting;
        # exact-mode patches stay byte-identical to the legacy format.
        slice_uids: Tuple[int, ...] = ()
        if self.stats_kind == "streaming":
            slice_uids = tuple(self.slice.uids)
        candidates = plan.watch_candidates
        if len(candidates) <= NUM_DEBUG_REGISTERS:
            return [Patch.from_plan(self.server.module.name, plan,
                                    slice_uids=slice_uids)]
        groups: List[List[int]] = []
        for i in range(0, len(candidates), NUM_DEBUG_REGISTERS):
            groups.append(candidates[i:i + NUM_DEBUG_REGISTERS])
        variants = [Patch.from_plan(self.server.module.name, plan, group,
                                    slice_uids=slice_uids)
                    for group in groups]
        if n_variants > len(variants):
            # Repeat variants so each endpoint gets one.
            variants = [variants[i % len(variants)]
                        for i in range(n_variants)]
        return variants

    def ingest(self, run: MonitoredRun,
               digest: Optional[str] = None) -> bool:
        """Absorb one monitored run.  Returns True when the run recurs the
        campaign's failure (same identity, §3 footnote 1).

        Predictor statistics prefer the run's *client-extracted* predictor
        set; when it is absent (legacy payloads, hand-built runs) the
        server extracts — through the shared context's digest-keyed cache
        when ``digest`` is known, so a re-ingested duplicate run never
        pays extraction twice.

        ``run.cohort`` is the cohort multiplicity: the run stands for that
        many real clients, and the statistics (recurrence totals, predictor
        counts) fold it in, while trace-shaped state (refinement run list,
        last failing run) counts the representative execution once.
        """
        assert self._current is not None, "begin_iteration first"
        weight = max(1, run.cohort)
        streaming = self.stats_kind == "streaming"
        if streaming:
            # Bounded retention: fold the run into the exact refinement
            # aggregate and the seeded reservoir instead of holding it.
            self._refinement_agg.add(run)
            self.retained_runs.add(run)
        else:
            self._runs.append(run)
        recurrence = bool(
            run.failed and run.failure is not None
            and run.failure.identity() == self.identity)
        if recurrence:
            self._current.failing_runs_seen += weight
            self.total_failure_recurrences += weight
            self._last_failing_run = run
        elif not run.failed:
            self._current.successful_runs_seen += weight
        predictors = self.server.predictors_of(run, digest=digest)
        if streaming:
            self.recent.add(predictors, recurrence, weight=weight)
        else:
            self._predictor_log.append((predictors, recurrence, weight))
        stripe = run.endpoint_id % self.stripes
        self._stripe_rankers[stripe].add_run(predictors, failed=recurrence,
                                             weight=weight)
        self._merged_ranker = None
        self.peak_tracked_bytes = max(self.peak_tracked_bytes,
                                      self.tracked_state_bytes())
        return recurrence

    def ranker(self) -> PredictorRanker:
        """The campaign's predictor statistics: the stripe partials folded
        through :meth:`PredictorRanker.merge` (cached until the next
        ingest).  One stripe short-circuits to the partial itself."""
        if self.stripes == 1:
            return self._stripe_rankers[0]
        if self._merged_ranker is None:
            if self.stats_kind == "streaming":
                merged = make_stream_ranker(self.server.ranker_kind,
                                            failure_pc=self.first_report.pc)
            else:
                merged = make_ranker(self.server.ranker_kind,
                                     failure_pc=self.first_report.pc)
            for partial in self._stripe_rankers:
                merged.merge(partial)
            self._merged_ranker = merged
        return self._merged_ranker

    def stripe_states(self) -> List[Dict]:
        """Each ingest stripe's partial-ranker snapshot, in stripe order —
        what a shard exports over the wire for cross-shard merging."""
        return [r.state() for r in self._stripe_rankers]

    def rebuild_ranker(self) -> PredictorRanker:
        """A from-scratch ranker over every run ingested so far — the
        reference the incrementally maintained one must equal.  Built with
        the campaign's ranking-engine class, so invariants campaigns are
        replay-checked against invariants scoring.

        Exact mode only: streaming mode keeps no per-run predictor log
        (that O(runs) log is exactly what it sheds), so there is nothing
        to replay."""
        if self.stats_kind == "streaming":
            raise RuntimeError("streaming statistics keep no predictor "
                               "log to rebuild from")
        return type(self._stripe_rankers[0]).from_runs(
            self._predictor_log, failure_pc=self.first_report.pc)

    # -- bounded-memory accounting -------------------------------------------

    def tracked_runs(self) -> int:
        """How many runs' worth of per-run state the campaign holds right
        now: the predictor log in exact mode (O(runs) for the campaign's
        lifetime), the reservoir in streaming mode (bounded)."""
        if self.stats_kind == "streaming":
            return len(self.retained_runs)
        return len(self._predictor_log)

    def tracked_state_bytes(self) -> int:
        """Rough footprint of all per-run/per-predictor tracked state —
        O(stripes) to ask, so it can run on every ingest to maintain
        :attr:`peak_tracked_bytes`."""
        total = sum(r.tracked_bytes() for r in self._stripe_rankers)
        if self.stats_kind == "streaming":
            total += len(self.retained_runs) * _RUN_BYTES
            total += self.recent.tracked_bytes()
            if self._refinement_agg is not None:
                total += self._refinement_agg.tracked_bytes()
        else:
            total += len(self._predictor_log) * _LOG_ENTRY_BYTES
            total += len(self._runs) * _RUN_BYTES
        return total

    def windowed_recurrences(self) -> int:
        """Failure recurrences over the rolling recency window (streaming
        mode) — what the budget scheduler's infogain signal weighs, so a
        campaign whose failure stopped recurring ages out of the budget
        instead of coasting on lifetime totals.  Falls back to the exact
        lifetime total outside streaming mode.  The bootstrap report
        counts while no window has aged out yet (mirroring the lifetime
        total's starting value of 1)."""
        if self.recent is None:
            return self.total_failure_recurrences
        bootstrap = 1 if self.recent.dropped == 0 else 0
        return self.recent.recurrences() + bootstrap

    def ingest_wire(self, message) -> Optional[Tuple[bool, MonitoredRun]]:
        """Epoch and idempotency gate in front of :meth:`ingest`.

        ``message`` is a decoded :class:`repro.fleet.wire.Message` carrying
        a :class:`MonitoredRun`.  Returns ``None`` when the run is
        discarded — its patch epoch is not the one being monitored (a
        stale or straggling client must not poison refinement, §3.2.3's
        cooperative invariant) or its content digest was already ingested
        (a duplicated message is a no-op) — else ``(recurrence, run)``.

        When the server carries a write-ahead journal, the run's canonical
        envelope bytes are appended *after* both gates pass and *before*
        the ingest mutates campaign state — so the journal records exactly
        the applied-envelope stream, and replaying it folds up the same
        state (see :mod:`repro.fleet.journal`).
        """
        if message.epoch != self.epoch:
            self.stale_runs_discarded += 1
            return None
        if message.digest in self._seen_digests:
            self.duplicate_runs_ignored += 1
            return None
        run = message.payload
        if self.server.journal is not None:
            from ..fleet import wire  # local import: fleet ↔ core layering

            # WAL ordering: the journal append must precede every in-memory
            # mutation (including the digest gate) — if the append raises,
            # the client's retry of the same envelope must not be dropped
            # as a duplicate.
            self.server.journal.append_ingest(
                message.digest,
                wire.encode_monitored_run(run, epoch=message.epoch,
                                          campaign=message.campaign))
        self._seen_digests.add(message.digest)
        self.server.ingests_applied += 1
        return self.ingest(run, digest=message.digest), run

    def note_ack(self, endpoint_id: int, epoch: Optional[int]) -> None:
        """Record a patch acknowledgement for the current epoch."""
        if epoch == self.epoch:
            self.acked_endpoints.add(endpoint_id)

    def note_unmonitored_report(self, report: FailureReport) -> None:
        """A failure report from an unpatched (crashed/stale) client during
        an iteration: counted, never fed into refinement."""
        self.unmonitored_reports += 1

    def finish_iteration(self) -> IterationResult:
        assert self._current is not None and self._current_plan is not None
        if self.server.journal is not None:
            # Iteration boundaries are the journal's durability points:
            # this append also fsyncs everything buffered so far.
            self.server.journal.append_finish_iteration(self.wire_key)
        if self.stats_kind == "streaming":
            # The streaming aggregate is exact — same result, O(1) runs.
            refinement = self._refinement_agg.result(
                self._current.window_uids, slice_uids=self.slice.uids)
        else:
            refinement = refine(self._current.window_uids, self._runs,
                                slice_uids=self.slice.uids)
        sketch: Optional[FailureSketch] = None
        if self._last_failing_run is not None:
            sketch = build_sketch(
                module=self.server.module,
                bug=self.bug,
                failure=self._last_failing_run.failure or self.first_report,
                refinement=refinement,
                failing_run=self._last_failing_run,
                best_predictors=self.ranker().best_per_kind(),
                sigma=self._current.sigma,
                iterations=self._current.number,
                failure_recurrences=self.total_failure_recurrences,
            )
        result = IterationResult(
            iteration=self._current.number,
            sigma=self._current.sigma,
            plan=self._current_plan,
            refinement=refinement,
            sketch=sketch,
            failing_runs=self._current.failing_runs_seen,
            successful_runs=self._current.successful_runs_seen,
        )
        self.iterations.append(result)
        if self.recent is not None:
            # One recency window per AsT iteration.
            self.recent.advance()
        return result

    def grow(self) -> int:
        if self.server.journal is not None:
            self.server.journal.append_grow(self.wire_key)
        return self.tracker.grow()

    @property
    def exhausted(self) -> bool:
        return self.tracker.exhausted

    def latest_sketch(self) -> Optional[FailureSketch]:
        for result in reversed(self.iterations):
            if result.sketch is not None:
                return result.sketch
        return None


@dataclass(frozen=True)
class QuarantineRecord:
    """One undecodable message the server refused to act on."""

    reason: str
    size: int
    prefix: bytes  # first bytes of the payload, for post-mortems


#: How many quarantined payloads the server keeps around for inspection.
QUARANTINE_KEEP = 32


class GistServer:
    """The centralized (or distributable) analysis side of Gist."""

    def __init__(self, module: Module,
                 extended_predicates: bool = False,
                 context: Optional[AnalysisContext] = None,
                 stripes: int = 1,
                 ranker: str = "fmeasure",
                 stats: str = "exact") -> None:
        if ranker not in RANKER_KINDS:
            raise ValueError(f"unknown ranker kind {ranker!r} "
                             f"(expected one of {RANKER_KINDS})")
        if stats not in STATS_KINDS:
            raise ValueError(f"unknown stats kind {stats!r} "
                             f"(expected one of {STATS_KINDS})")
        self.module = module
        #: Ranking engine every campaign on this server scores with
        #: (``fmeasure`` | ``invariants`` — see :mod:`repro.detect.
        #: invariants`).  A plain string so job descriptors and journal
        #: recovery can carry it across process boundaries.
        self.ranker_kind = ranker
        #: Statistics mode: ``"exact"`` (unbounded dicts + run logs, the
        #: byte-identical reference) or ``"streaming"`` (sketched bounded
        #: state — see :mod:`repro.core.streaming`).
        self.stats_kind = stats
        #: All static artifacts live here; pass one context to many servers
        #: (or many diagnoses) and nothing is ever rebuilt.
        self.context = context or AnalysisContext(module)
        self.slicer = self.context.slicer()
        self.planner = self.context.planner()
        self.campaigns: Dict[str, DiagnosisCampaign] = {}
        #: Ingest stripes for every campaign this server starts: a sharded
        #: control plane sets this to its shard count so predictor
        #: statistics accumulate in per-shard partials (merged on demand).
        self.stripes = stripes
        self.offline_analysis_seconds = 0.0
        #: §6 future work: also rank range/inequality value predicates.
        self.extended_predicates = extended_predicates
        #: Wire front door accounting: payloads that failed to decode or
        #: failed their digest check are quarantined, never parsed further.
        self.messages_received = 0
        self.quarantined_count = 0
        self.quarantine: List[QuarantineRecord] = []
        #: Optional write-ahead journal (:class:`repro.fleet.journal.
        #: CampaignJournal`): when attached, every state-mutating campaign
        #: transition is appended before it is applied, so a crashed
        #: server resumes by replaying the journal.  ``None`` (the
        #: default) journals nothing; a server built by
        #: :func:`~repro.fleet.journal.recover_server` also replays with
        #: ``journal=None`` so replayed records are never re-appended.
        self.journal = None
        #: Lifetime count of *applied* monitored-run ingests (rejected
        #: traffic excluded).  Journal replay reconstructs it, which is
        #: what keeps a seeded ``server_crash_every`` fault schedule
        #: stable across the very recoveries it triggers.
        self.ingests_applied = 0

    def receive(self, blob: bytes):
        """Decode one payload from the uplink.

        Returns the decoded :class:`repro.fleet.wire.Message`, or ``None``
        after quarantining a payload that failed decode or digest check —
        a lossy fleet must never be able to crash the server or smuggle a
        half-parsed object into a campaign.
        """
        from ..fleet import wire  # local import: fleet ↔ core layering

        try:
            message = wire.decode_message(blob)
        except wire.WireError as err:
            self.quarantined_count += 1
            if len(self.quarantine) < QUARANTINE_KEEP:
                self.quarantine.append(QuarantineRecord(
                    reason=str(err), size=len(blob), prefix=blob[:48]))
            return None
        self.messages_received += 1
        return message

    def predictors_of(self, run: MonitoredRun,
                      digest: Optional[str] = None) -> FrozenSet:
        """The predictor set of one monitored run.

        Client-extracted predictors ride in ``run.predictors`` and are
        used as-is (and published to the shared context cache when the
        run's content digest is known).  Otherwise the server extracts —
        via the context's digest-keyed memo when possible, so fleet
        retries and duplicated payloads skip re-extraction.
        """
        extended = self.extended_predicates
        if run.predictors is not None:
            predictors = frozenset(run.predictors)
            if digest is not None:
                self.context.store_predictors(digest, extended, predictors)
            return predictors
        if digest is not None:
            return self.context.predictors_for(
                digest, extended,
                lambda: frozenset(extract_all(run, self.module,
                                              extended=extended)))
        return frozenset(extract_all(run, self.module, extended=extended))

    def handle_failure_report(self, bug: str, report: FailureReport,
                              initial_sigma: int = DEFAULT_SIGMA,
                              key: Optional[str] = None
                              ) -> DiagnosisCampaign:
        """Start (or return) the campaign for this failure identity.
        Slicing time is accounted as offline analysis time (Table 1)."""
        identity = report.identity()
        if identity in self.campaigns:
            return self.campaigns[identity]
        if self.journal is not None:
            from ..fleet import wire  # local import: fleet ↔ core layering

            self.journal.append_campaign_start(
                bug, key, initial_sigma, self.stripes,
                wire.encode_failure_report(report, campaign=key))
        started = time.perf_counter()
        campaign = DiagnosisCampaign(self, bug, report, initial_sigma,
                                     key=key, stripes=self.stripes)
        self.offline_analysis_seconds += time.perf_counter() - started
        self.campaigns[identity] = campaign
        return campaign
