"""Adaptive Slice Tracking (AsT, §3.2.1).

Gist never tracks a whole static slice at once.  It starts with a small
window — σ = 2 statements backward from the failure point, "because even a
simple concurrency bug is likely to be caused by two statements from
different threads" — and doubles σ each iteration until the developer (or,
in our evaluation, the ideal-sketch oracle) says the sketch contains the
root cause.

σ is measured in *source statements*, matching the paper's Fig. 3; the
window's instruction set comes from
:meth:`repro.analysis.slicing.StaticSlice.window`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from ..analysis.slicing import StaticSlice

DEFAULT_SIGMA = 2


@dataclass
class AstIteration:
    """Record of one AsT round (kept for latency accounting)."""

    number: int
    sigma: int
    window_uids: Set[int]
    failing_runs_seen: int = 0
    successful_runs_seen: int = 0


class AdaptiveSliceTracker:
    """Drives the σ schedule over one static slice."""

    def __init__(self, slice_: StaticSlice,
                 initial_sigma: int = DEFAULT_SIGMA) -> None:
        if initial_sigma < 1:
            raise ValueError("initial sigma must be >= 1")
        self.slice = slice_
        self.initial_sigma = initial_sigma
        self.sigma = initial_sigma
        self.iterations: List[AstIteration] = []

    @property
    def total_statements(self) -> int:
        return len(self.slice.statements())

    def current_window(self) -> Set[int]:
        return self.slice.window(self.sigma)

    def begin_iteration(self) -> AstIteration:
        it = AstIteration(number=len(self.iterations) + 1,
                          sigma=self.sigma,
                          window_uids=self.current_window())
        self.iterations.append(it)
        return it

    def grow(self) -> int:
        """Multiplicative increase: double σ (§3.2.1).  Returns new σ."""
        self.sigma = min(self.sigma * 2, max(self.total_statements, 1))
        return self.sigma

    @property
    def exhausted(self) -> bool:
        """True once the window already covers the entire slice."""
        return self.sigma >= self.total_statements

    def failure_recurrences_used(self) -> int:
        """Total failing production runs consumed so far — the paper's
        root-cause-diagnosis latency metric (Table 1, Fig. 12)."""
        return sum(it.failing_runs_seen for it in self.iterations)
