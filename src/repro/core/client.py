"""Gist's client side: one production endpoint.

An endpoint executes workloads of the deployed program.  When the server
has shipped an instrumentation patch, the endpoint applies it (PT toggles +
watchpoint hooks), runs, and reports back a
:class:`~repro.core.refinement.MonitoredRun`: raw PT buffers are decoded
here for transport convenience, the trap log is shipped verbatim, and the
run's outcome (including any failure report) rides along.

Unmonitored runs — the fleet before any patch exists — only report failures,
which is what bootstraps a diagnosis campaign (Fig. 2, step ①).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..detect import apply_detectors, make_detectors, validate_detectors
from ..hw.watchpoints import TrapRecord
from ..instrument.patch import AppliedInstrumentation, Patch, apply_patch
from ..lang.ir import Module
from ..runtime.failures import RunOutcome
from ..runtime.interpreter import Interpreter
from .predictors import extract_all
from .refinement import MonitoredRun
from .streaming import slice_monitored_run
from .workload import Workload


@dataclass
class ClientRunResult:
    """One endpoint run: the outcome plus the monitored-run report, if any."""
    outcome: RunOutcome
    monitored: Optional[MonitoredRun] = None


class GistClient:
    """One endpoint in the cooperative deployment."""

    def __init__(self, module: Module, endpoint_id: int = 0,
                 ptwrite: bool = False,
                 extended_predicates: bool = False,
                 interp_mode: Optional[str] = None,
                 detectors: tuple = ()) -> None:
        self.module = module
        self.endpoint_id = endpoint_id
        self.runs_executed = 0
        #: §6 future-hardware mode: data flow rides in the PT stream.
        self.ptwrite = ptwrite
        #: §6 future work: also extract range/inequality value predicates
        #: (must match the server's setting so fleet statistics line up).
        self.extended_predicates = extended_predicates
        #: Interpreter tier ("compiled"/"decoded"/"strict"); None defers to
        #: the process default.  Instrumented runs fall back to the decoded
        #: tier automatically, so this only shapes uninstrumented runs.
        self.interp_mode = interp_mode
        #: Detection-subsystem tracers attached to every run of this
        #: endpoint (see :mod:`repro.detect`): fresh instances per run,
        #: and their verdicts amend the outcome before it is reported.
        self.detectors = validate_detectors(detectors)
        #: Evidence-slicing accounting (streaming statistics mode): wire
        #: body bytes this endpoint pruned before reporting, and the bytes
        #: it actually reported for sliced runs.  Both stay 0 when patches
        #: carry no slice (exact mode).
        self.payload_bytes_saved = 0
        self.payload_bytes_sent = 0

    def prepare_patch(self, patch: Optional[Patch]) -> Optional[Patch]:
        """Transform a server patch before applying it (identity here).

        Subclasses override this to model endpoints that run a reduced
        patch (e.g. the control-flow-only ablation client) — keeping the
        transformation separate from :meth:`run` lets remote execution
        engines apply it before a job ever leaves the server process.
        """
        return patch

    def run(self, workload: Workload,
            patch: Optional[Patch] = None,
            run_id: int = -1) -> ClientRunResult:
        """Execute one workload, with or without instrumentation."""
        self.runs_executed += 1
        patch = self.prepare_patch(patch)
        applied: Optional[AppliedInstrumentation] = None
        tracers = ()
        hooks = None
        if patch is not None:
            applied = apply_patch(patch, self.module, ptwrite=self.ptwrite)
            tracers = applied.tracers()
            hooks = applied.hooks
        detectors = make_detectors(self.detectors)
        if detectors:
            tracers = list(tracers) + detectors
        interp = Interpreter(
            self.module,
            entry=workload.entry,
            args=list(workload.args),
            scheduler=workload.make_scheduler(),
            tracers=tracers,
            hooks=hooks,
            max_steps=workload.max_steps,
            mode=self.interp_mode,
        )
        outcome = interp.run()
        if detectors:
            outcome = apply_detectors(outcome, detectors)
        monitored = None
        if applied is not None:
            decoded = applied.driver.decode_all()
            executed = {tid: trace.executed_sequence()
                        for tid, trace in decoded.items()}
            traps = list(applied.watchpoints.total_order())
            if self.ptwrite:
                # Synthesize trap records from the in-stream PTW packets.
                # The TSC stamp supplies the cross-core total order the
                # watchpoint unit's sequence numbers provided.  The stream
                # carries *every* access in traced windows; keep only those
                # touching the addresses the window's data items live at —
                # the same address set watchpoints would have covered,
                # minus the 4-register cap and the arming delay.
                candidates = {h.uid for h in patch.hooks
                              if h.action == "watch"}
                events = []
                for tid, trace in decoded.items():
                    for event in trace.mem_events():
                        events.append((tid, event))
                watched = {event.address for _tid, event in events
                           if event.uid in candidates}
                for tid, event in events:
                    if event.address not in watched:
                        continue
                    traps.append(TrapRecord(
                        seq=event.tsc, tid=tid, pc=event.uid,
                        address=event.address,
                        is_write=event.is_write,
                        value=event.value, slot=-1))
                traps.sort(key=lambda t: t.seq)
            monitored = MonitoredRun(
                run_id=run_id,
                endpoint_id=self.endpoint_id,
                failed=outcome.failed,
                failure=outcome.failure,
                executed=executed,
                traps=traps,
                overhead=outcome.overhead,
                trace_bytes=applied.driver.encoder.total_bytes(),
            )
            # Extract failure predictors here, on the endpoint: the fleet
            # walks its own traces in parallel and the server's single
            # aggregation thread ingests ready-made predictor sets.
            # Extraction runs over the *full* trace, so predictor facts are
            # exact even when slicing below prunes the shipped evidence.
            monitored.predictors = frozenset(extract_all(
                monitored, self.module,
                extended=self.extended_predicates))
            if patch.slice_uids:
                saved, sent = slice_monitored_run(monitored, patch)
                self.payload_bytes_saved += saved
                self.payload_bytes_sent += sent
        return ClientRunResult(outcome=outcome, monitored=monitored)
