"""Standalone-HTML export of failure sketches.

The paper integrated Gist with KCachegrind "for easy navigation of the
statements in the failure sketch" (§5.1).  Our navigation surface is a
single self-contained HTML file: one column per thread, time flowing
downward, predictor steps boxed, tracked values in a side column — open it
in any browser, attach it to a bug report.
"""

from __future__ import annotations

import html as _html
from typing import List

from .sketch import FailureSketch

_CSS = """
body { font-family: 'SF Mono', Consolas, monospace; margin: 2em;
       background: #fafafa; color: #222; }
h1 { font-size: 1.2em; }
table { border-collapse: collapse; width: 100%; }
th, td { border: 1px solid #ddd; padding: 4px 10px; text-align: left;
         vertical-align: top; font-size: 0.9em; }
th { background: #f0f0f0; }
td.time { text-align: right; color: #888; width: 3em; }
td.values { color: #0b6623; width: 16em; }
.highlight { border: 2px dashed #c0392b; padding: 1px 4px;
             display: inline-block; background: #fdf2f0; }
.anchored { font-weight: 600; }
.sep { border-top: 3px double #bbb; }
.meta { color: #666; font-size: 0.85em; margin-top: 1.5em; }
.pred { background: #fff; border: 1px solid #ddd; padding: 0.8em 1em;
        margin-top: 1em; font-size: 0.9em; }
.race { background: #fff; border: 1px solid #e0b4b4; padding: 0.8em 1em;
        margin-top: 1em; font-size: 0.9em; }
.race .arrow { text-align: center; color: #c0392b; }
.origin { background: #fff; border: 1px solid #b4c7e0; padding: 0.8em 1em;
          margin-top: 1em; font-size: 0.9em; }
.role { color: #888; display: inline-block; width: 8em; }
"""


def render_html(sketch: FailureSketch) -> str:
    """Render a sketch as a self-contained HTML document."""
    threads = sketch.threads or [0]
    esc = _html.escape
    rows: List[str] = []
    prev_func = {}
    for step in sketch.steps:
        cells = [f'<td class="time">{step.order}</td>']
        sep = prev_func.get(step.tid) not in (None, step.func)
        prev_func[step.tid] = step.func
        for tid in threads:
            if tid != step.tid:
                cells.append("<td></td>")
                continue
            body = esc(step.source or f"{step.func}:{step.line}")
            classes = []
            if step.anchored:
                classes.append("anchored")
            inner = (f'<span class="highlight">{body}</span>'
                     if step.highlight else body)
            cls = f' class="{" ".join(classes)}"' if classes else ""
            cells.append(f"<td{cls}>{inner}</td>")
        values = ", ".join(f"{esc(str(n))}={v}" for n, v in step.values)
        cells.append(f'<td class="values">{values}</td>')
        row_cls = ' class="sep"' if sep else ""
        rows.append(f"<tr{row_cls}>{''.join(cells)}</tr>")

    header = "".join(
        ["<th>Time</th>"]
        + [f"<th>Thread T{tid}</th>" for tid in threads]
        + ["<th>values</th>"])

    predictors = []
    for kind in ("order", "value", "vrange", "branch"):
        stats = sketch.predictors.get(kind)
        if stats is None:
            continue
        predictors.append(
            f"<div><b>{esc(kind)}</b>: "
            f"{esc(stats.predictor.describe())} "
            f"— F={stats.f_measure:.3f} "
            f"(P={stats.precision:.2f}, R={stats.recall:.2f})</div>")
    predictor_html = (f'<div class="pred"><b>Best failure predictors '
                      f'(F-measure, β=0.5)</b>{"".join(predictors)}</div>'
                      if predictors else "")

    race_html = ""
    if sketch.race_steps:
        race_rows = []
        for i, step in enumerate(sketch.race_steps):
            body = esc(step.source or f"{step.func}:{step.line}")
            race_rows.append(
                f'<div><span class="role">{esc(step.role)}</span> '
                f'T{step.tid} <span class="highlight">{body}</span> '
                f'({esc(step.func)}:{step.line})</div>')
            if i == 0:
                race_rows.append('<div class="arrow">'
                                 '&#8645; no happens-before edge &#8645;'
                                 '</div>')
        race_html = (f'<div class="race"><b>Racing accesses on '
                     f'{hex(sketch.race_address)} (locksets disjoint)</b>'
                     f'{"".join(race_rows)}</div>')

    origin_html = ""
    if sketch.origin_steps:
        origin_rows = []
        for step in sketch.origin_steps:
            note = ", ".join(f"{esc(str(n))}={hex(v)}"
                             for n, v in step.values)
            suffix = f" [{note}]" if note else ""
            origin_rows.append(
                f'<div><span class="role">{esc(step.role)}</span> '
                f'T{step.tid} {esc(step.source or "")} '
                f'({esc(step.func)}:{step.line}){suffix}</div>')
        origin_html = (f'<div class="origin"><b>Null-pointer causality '
                       f'(origin &rarr; propagation &rarr; deref)</b>'
                       f'{"".join(origin_rows)}</div>')

    return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8">
<title>Failure Sketch — {esc(sketch.bug)}</title>
<style>{_CSS}</style></head>
<body>
<h1>Failure Sketch for {esc(sketch.bug)}</h1>
<div>Type: {esc(sketch.failure_type)}</div>
<table>
<tr>{header}</tr>
{chr(10).join(rows)}
</table>
{race_html}
{origin_html}
{predictor_html}
<div class="meta">AsT: σ={sketch.sigma}, iterations={sketch.iterations},
failure recurrences={sketch.failure_recurrences};
module {esc(sketch.module_name)}, failing uid {sketch.failing_uid}.</div>
</body></html>
"""
