"""ASCII rendering of failure sketches, in the style of Figs. 1/7/8.

Time flows downward; each thread gets a column; statements highlighted as
failure predictors are boxed with ``[[ ... ]]`` (the paper's dotted
rectangles); a trailing data-flow column shows tracked values.
"""

from __future__ import annotations

from typing import Dict, List

from .sketch import FailureSketch, SketchStep

_COL_WIDTH = 44
_VALUE_WIDTH = 26


def _clip(text: str, width: int) -> str:
    text = text.strip()
    if len(text) <= width:
        return text
    return text[: width - 1] + "…"


def _cell(step: SketchStep, width: int) -> str:
    body = step.source or f"{step.func}:{step.line}"
    suffix = f" (x{step.repeats})" if step.repeats > 1 else ""
    budget = width - len(suffix) - (6 if step.highlight else 2)
    body = _clip(body, budget) + suffix
    if step.highlight:
        body = f"[[ {body} ]]"
    return body


def render_sketch(sketch: FailureSketch, show_predictors: bool = True) -> str:
    """Render a sketch as fixed-width text."""
    lines: List[str] = []
    title = f"Failure Sketch for {sketch.bug}"
    lines.append(title)
    lines.append("=" * len(title))
    lines.append(f"Type: {sketch.failure_type}")
    lines.append("")

    threads = sketch.threads or [0]
    header = ["Time"] + [f"Thread T{tid}" for tid in threads] + ["values"]
    widths = [4] + [_COL_WIDTH] * len(threads) + [_VALUE_WIDTH]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("-+-".join("-" * w for w in widths))

    current_func: Dict[int, str] = {}
    for step in sketch.steps:
        if current_func.get(step.tid) not in (None, step.func):
            # Function change within a thread column: horizontal separator,
            # as in Fig. 7 ("horizontal line separates different functions").
            row = [" " * 4]
            for tid in threads:
                row.append(("~" * 8).ljust(_COL_WIDTH) if tid == step.tid
                           else " " * _COL_WIDTH)
            row.append(" " * _VALUE_WIDTH)
            lines.append(" | ".join(row))
        current_func[step.tid] = step.func

        cells = [str(step.order).rjust(4)]
        for tid in threads:
            if tid == step.tid:
                cells.append(_cell(step, _COL_WIDTH).ljust(_COL_WIDTH))
            else:
                cells.append(" " * _COL_WIDTH)
        value_text = ", ".join(f"{name}={value}"
                               for name, value in step.values)
        cells.append(_clip(value_text, _VALUE_WIDTH).ljust(_VALUE_WIDTH))
        lines.append(" | ".join(cells))

    lines.append("")
    lines.append(f"Failure at step {len(sketch.steps)}: "
                 f"{sketch.failure_type}")
    lines.extend(_race_section(sketch, threads))
    lines.extend(_origin_section(sketch))
    if show_predictors and sketch.predictors:
        lines.append("")
        lines.append("Best failure predictors (F-measure, beta=0.5):")
        for kind in ("order", "value", "vrange", "branch"):
            stats = sketch.predictors.get(kind)
            if stats is None:
                continue
            lines.append(
                f"  {kind:<7} {stats.predictor.describe():<40} "
                f"F={stats.f_measure:.3f} "
                f"(P={stats.precision:.2f}, R={stats.recall:.2f})")
    lines.append("")
    lines.append(f"AsT: sigma={sketch.sigma}, iterations={sketch.iterations},"
                 f" failure recurrences={sketch.failure_recurrences}")
    return "\n".join(lines)


def _race_section(sketch: FailureSketch, threads: List[int]) -> List[str]:
    """The data-race rows: one column per thread, an arrow between the
    two racing accesses (the paper's sketches draw the problematic
    inter-thread orderings as arrows between thread columns)."""
    if not sketch.race_steps:
        return []
    lines = ["", f"Racing accesses on {hex(sketch.race_address)} "
                 f"(no happens-before edge, locksets disjoint):"]
    arrow_width = 4 + 3 + _COL_WIDTH * len(threads) + 3 * (len(threads) - 1)
    for i, step in enumerate(sketch.race_steps):
        cells = [str(i + 1).rjust(4)]
        for tid in threads:
            if tid == step.tid:
                body = _clip(step.source or f"{step.func}:{step.line}",
                             _COL_WIDTH - 6)
                cells.append(f"[[ {body} ]]".ljust(_COL_WIDTH))
            else:
                cells.append(" " * _COL_WIDTH)
        lines.append(" | ".join(cells) +
                     f"  {step.role} T{step.tid} ({step.func}:{step.line})")
        if i == 0:
            lines.append(("<" + "~" * 18 + " races with " + "~" * 18 + ">")
                         .center(arrow_width))
    return lines


def _origin_section(sketch: FailureSketch) -> List[str]:
    """The null-pointer causality rows (Casper-style origin chain)."""
    if not sketch.origin_steps:
        return []
    lines = ["", "Null-pointer causality (origin -> propagation -> deref):"]
    for step in sketch.origin_steps:
        source = _clip(step.source or "", _COL_WIDTH)
        note = ", ".join(f"{name}={hex(value)}" for name, value in step.values)
        suffix = f"  [{note}]" if note else ""
        lines.append(f"  {step.role:<12} T{step.tid} "
                     f"{step.func}:{step.line:<4} {source}{suffix}")
    return lines


def render_compact(sketch: FailureSketch) -> str:
    """One-line-per-step rendering for logs and tests."""
    out = []
    for step in sketch.steps:
        mark = "*" if step.highlight else " "
        values = (" " + ",".join(f"{n}={v}" for n, v in step.values)
                  if step.values else "")
        out.append(f"{step.order:>3} T{step.tid} {mark} "
                   f"{step.func}:{step.line} {step.source}{values}")
    return "\n".join(out)
