"""The top-level Gist facade: one call from failure to failure sketch.

    from repro import Gist, Workload
    from repro.core.workload import constant_factory

    gist = Gist(module, bug="pbzip2 bug #1")
    result = gist.diagnose(constant_factory(Workload(args=(4,))))
    print(result.rendered())

Under the hood this wires together every stage of the paper's Fig. 2:
backward slicing, adaptive slice tracking, PT-based control-flow tracking,
watchpoint-based data-flow tracking, refinement, statistical predictor
ranking, and sketch construction — over a simulated cooperative fleet.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence

from ..analysis.context import AnalysisContext
from ..lang.codegen import compile_source
from ..lang.ir import Module
from .accuracy import AccuracyReport, IdealSketch, score
from .adaptive import DEFAULT_SIGMA
from .cooperative import CampaignStats, CooperativeDeployment, StopPredicate
from .render import render_sketch
from .sketch import FailureSketch
from .workload import Workload, WorkloadFactory, constant_factory


@dataclass
class DiagnosisResult:
    """What :meth:`Gist.diagnose` returns."""

    stats: CampaignStats
    #: Filled when the diagnosis ran through the multi-campaign control
    #: plane (``shards`` > 1 or ``cohort_size`` > 1): the full
    #: :class:`~repro.control.plane.PlaneResult` with shard assignments,
    #: scheduler round accounting, and the merged global cluster view.
    plane: Optional[object] = None

    @property
    def sketch(self) -> Optional[FailureSketch]:
        return self.stats.sketch

    @property
    def found(self) -> bool:
        return self.stats.found

    @property
    def failure_recurrences(self) -> int:
        return self.stats.failure_recurrences

    def rendered(self) -> str:
        if self.sketch is None:
            return "(no failure sketch: the failure never recurred "\
                   "under monitoring)"
        return render_sketch(self.sketch)

    def accuracy_against(self, ideal: IdealSketch) -> Optional[AccuracyReport]:
        if self.sketch is None:
            return None
        return score(self.sketch, ideal)


class Gist:
    """Failure sketching for one program."""

    def __init__(self, module: Module, bug: str = "bug",
                 endpoints: int = 8, ptwrite: bool = False,
                 extended_predicates: bool = False,
                 context: Optional[AnalysisContext] = None,
                 analysis_cache_dir: Optional[os.PathLike] = None,
                 fleet_workers: int = 1,
                 executor: str = "threads",
                 engine=None,
                 transport: str = "wire",
                 fault_plan=None,
                 interp_mode: Optional[str] = None,
                 shards: int = 1,
                 cohort_size: int = 1,
                 cohort_share: float = 1.0,
                 scheduler: str = "infogain",
                 quantum: int = 8,
                 journal_dir: Optional[os.PathLike] = None,
                 batch_bytes: Optional[int] = None,
                 batch_ms: Optional[float] = None,
                 detectors: Sequence[str] = (),
                 ranker: str = "fmeasure",
                 stats: str = "exact") -> None:
        self.module = module
        self.bug = bug
        self.endpoints = endpoints
        #: §6 future-hardware mode: PT carries data packets, no watchpoints.
        self.ptwrite = ptwrite
        #: §6 future work: also rank range/inequality value predicates.
        self.extended_predicates = extended_predicates
        #: Shared analysis artifacts: every diagnosis on this Gist (and
        #: anything else handed this context) reuses one copy of each CFG,
        #: dominator tree, reaching-defs table, call graph, and slice.
        self.context = context or AnalysisContext(
            module, cache_dir=analysis_cache_dir)
        #: Concurrent client runs per fleet batch (1 = sequential).
        self.fleet_workers = fleet_workers
        #: Execution engine kind: ``"serial"``, ``"threads"`` (default) or
        #: ``"processes"`` (warm worker pool, escapes the GIL).
        self.executor = executor
        #: Pre-built :class:`repro.fleet.FleetExecutor` to reuse across
        #: diagnoses (caller owns its lifecycle); overrides ``executor``.
        self.engine = engine
        #: ``"wire"`` (encoded-bytes fleet transport, default),
        #: ``"socket"`` (the same bytes over a real Unix/TCP socket with
        #: batching and backpressure), or ``"direct"`` (the pre-transport
        #: in-process hand-off).
        self.transport = transport
        #: Optional :class:`repro.fleet.FaultPlan` injected at the
        #: transport boundary (wire transport only).
        self.fault_plan = fault_plan
        #: Interpreter tier for uninstrumented endpoint runs
        #: ("compiled"/"decoded"/"strict"; None = process default).
        self.interp_mode = interp_mode
        #: Control-plane shard count.  With the defaults below (1 shard,
        #: cohort of 1) diagnosis takes the classic single-campaign path,
        #: byte-identical to pre-control-plane behaviour; any other value
        #: routes through :class:`~repro.control.plane.ControlPlane`.
        self.shards = shards
        #: Real clients each simulated endpoint stands in for (K).
        self.cohort_size = cohort_size
        #: Fraction of a cohort participating per run (see CohortModel).
        self.cohort_share = cohort_share
        #: Budget-scheduler policy: ``"infogain"`` or ``"fair"``.
        self.scheduler = scheduler
        #: Runs each endpoint affords per scheduler round.
        self.quantum = quantum
        #: Write-ahead campaign journal directory (None = no journal).
        self.journal_dir = journal_dir
        #: Socket-transport batching knobs (None = transport defaults).
        self.batch_bytes = batch_bytes
        self.batch_ms = batch_ms
        #: Detection-subsystem tracers endpoints attach to every run
        #: (:data:`repro.detect.DETECTOR_KINDS` names).
        self.detectors = tuple(detectors)
        #: Predictor ranking engine: ``"fmeasure"`` | ``"invariants"``.
        self.ranker = ranker
        #: Statistics mode: ``"exact"`` (reference, holds every run) or
        #: ``"streaming"`` (bounded memory — sketched ranking, windowed
        #: F-measures, sliced evidence; see :mod:`repro.core.streaming`).
        self.stats = stats

    @classmethod
    def from_source(cls, source: str, bug: str = "bug",
                    endpoints: int = 8, module_name: str = "program",
                    ptwrite: bool = False, **kwargs) -> "Gist":
        """Compile MiniC source and build a Gist for it."""
        return cls(compile_source(source, module_name), bug=bug,
                   endpoints=endpoints, ptwrite=ptwrite, **kwargs)

    def diagnose(
        self,
        workload_factory: WorkloadFactory,
        initial_sigma: int = DEFAULT_SIGMA,
        stop_when: Optional[StopPredicate] = None,
        max_iterations: int = 10,
        max_runs_per_iteration: int = 400,
        min_successful_per_iteration: int = 3,
    ) -> DiagnosisResult:
        """Run a full cooperative diagnosis campaign.

        ``stop_when`` models the developer deciding the sketch contains the
        root cause (§3.2.1); by default the first sketch wins.

        With ``shards`` > 1 or ``cohort_size`` > 1 the campaign runs as a
        one-campaign control plane (sharded state export, cohort-weighted
        runs); the default configuration takes the classic path below,
        byte-identical to pre-control-plane Gist.
        """
        if self.shards > 1 or self.cohort_size > 1:
            return self._diagnose_via_plane(
                workload_factory, initial_sigma=initial_sigma,
                stop_when=stop_when, max_iterations=max_iterations,
                max_runs_per_iteration=max_runs_per_iteration,
                min_successful_per_iteration=min_successful_per_iteration)
        deployment = CooperativeDeployment(
            self.module, workload_factory,
            endpoints=self.endpoints, bug=self.bug, ptwrite=self.ptwrite,
            extended_predicates=self.extended_predicates,
            context=self.context, fleet_workers=self.fleet_workers,
            executor=self.executor, engine=self.engine,
            transport=self.transport, fault_plan=self.fault_plan,
            interp_mode=self.interp_mode, journal_dir=self.journal_dir,
            batch_bytes=self.batch_bytes, batch_ms=self.batch_ms,
            detectors=self.detectors, ranker=self.ranker,
            stats=self.stats)
        stats = deployment.run_campaign(
            initial_sigma=initial_sigma,
            stop_when=stop_when,
            max_iterations=max_iterations,
            max_runs_per_iteration=max_runs_per_iteration,
            min_successful_per_iteration=min_successful_per_iteration,
        )
        self.context.save()
        return DiagnosisResult(stats=stats)

    def _diagnose_via_plane(
        self,
        workload_factory: WorkloadFactory,
        initial_sigma: int,
        stop_when: Optional[StopPredicate],
        max_iterations: int,
        max_runs_per_iteration: int,
        min_successful_per_iteration: int,
    ) -> DiagnosisResult:
        """Run this Gist's single campaign through the control plane."""
        # Lazy import: repro.control imports repro.core submodules.
        from ..control import CampaignSpec, ControlPlane

        if self.transport not in ("wire", "socket"):
            raise ValueError("shards/cohorts need a wire transport")
        spec = CampaignSpec(bug=self.bug, module=self.module,
                            workload_factory=workload_factory,
                            stop_when=stop_when, context=self.context,
                            detectors=self.detectors)
        plane = ControlPlane(
            [spec], shards=self.shards, endpoints=self.endpoints,
            cohort_size=self.cohort_size, cohort_share=self.cohort_share,
            scheduler=self.scheduler, quantum=self.quantum,
            fleet_workers=self.fleet_workers, executor=self.executor,
            engine=self.engine, fault_plan=self.fault_plan,
            transport=self.transport, journal_dir=self.journal_dir,
            interp_mode=self.interp_mode, ptwrite=self.ptwrite,
            extended_predicates=self.extended_predicates,
            initial_sigma=initial_sigma, max_iterations=max_iterations,
            max_runs_per_iteration=max_runs_per_iteration,
            min_successful_per_iteration=min_successful_per_iteration,
            ranker=self.ranker, stats=self.stats)
        result = plane.run()
        self.context.save()
        return DiagnosisResult(stats=result.stats[self.bug], plane=result)

    def diagnose_workload(self, workload: Workload,
                          **kwargs) -> DiagnosisResult:
        """Convenience: diagnose with a single base workload, reseeded."""
        return self.diagnose(constant_factory(workload), **kwargs)

    @staticmethod
    def diagnose_many(specs: Sequence, **plane_options):
        """Diagnose several bugs *concurrently* over a shared fleet.

        ``specs`` is a sequence of :class:`~repro.control.plane.CampaignSpec`;
        keyword options are forwarded to
        :class:`~repro.control.plane.ControlPlane` (``shards``,
        ``endpoints``, ``cohort_size``, ``scheduler``, ``quantum``,
        ``fleet_workers``, ``executor``, ...).  Returns the
        :class:`~repro.control.plane.PlaneResult`.
        """
        from ..control import ControlPlane

        return ControlPlane(specs, **plane_options).run()
