"""The failure sketch data model and its builder.

A failure sketch (paper Figs. 1, 7, 8) is a per-thread, time-ordered listing
of the *source statements* that lead to a failure, annotated with:

- the inter-thread execution order of the statements (steps),
- the values of tracked variables (data flow), and
- the highest-F-measure failure predictors, visually set off (the paper's
  dotted rectangles; our renderer uses ``[[ ... ]]``).

Statements enter the sketch from the refined slice window; their order
comes from the failing run's reconstructed global event order; values come
from watchpoint traps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..lang.ir import Module, Opcode
from ..runtime.failures import FailureReport, OriginHop, RaceInfo
from .predictors import Predictor
from .refinement import (
    MonitoredRun,
    OrderedEvent,
    RefinementResult,
    global_event_order,
)
from .stats import PredictorStats

#: Rendering bound: loops can repeat statements arbitrarily; sketches keep
#: the first and last occurrences of repeated steps within this budget.
MAX_STEPS = 60


@dataclass
class SketchStep:
    """One time step of the sketch: a statement execution by one thread."""

    order: int
    tid: int
    uid: int                       # representative instruction
    func: str
    line: int
    source: str
    highlight: bool = False
    values: List[Tuple[str, int]] = field(default_factory=list)
    anchored: bool = False         # order comes from a watchpoint trap
    #: >1 when this step closes a collapsed run of identical loop cycles.
    repeats: int = 1
    #: Detection-subsystem rows carry a role: ``"race write"`` /
    #: ``"race read"`` for the two accesses of a data race, or
    #: ``"origin"`` / ``"propagation"`` / ``"deref"`` for the hops of a
    #: null-pointer causality chain.  Ordinary steps leave it empty.
    role: str = ""


@dataclass
class FailureSketch:
    """The finished artifact handed to the developer."""

    bug: str
    failure_type: str
    module_name: str
    failing_uid: int
    threads: List[int] = field(default_factory=list)
    steps: List[SketchStep] = field(default_factory=list)
    statement_uids: Set[int] = field(default_factory=set)
    #: First-occurrence order of anchored memory accesses (line-level keys),
    #: used by the ordering-accuracy metric.
    access_order: List[Tuple[str, int]] = field(default_factory=list)
    predictors: Dict[str, PredictorStats] = field(default_factory=dict)
    sigma: int = 0
    iterations: int = 0
    failure_recurrences: int = 0
    #: Data-race rows (two accesses with no happens-before edge), present
    #: when the failure came from the happens-before detector.
    race_steps: List[SketchStep] = field(default_factory=list)
    race_address: Optional[int] = None
    #: Null-pointer causality rows (origin → propagation → dereference),
    #: present when the failure came from the null-origin tracer.
    origin_steps: List[SketchStep] = field(default_factory=list)

    def statements(self) -> List[Tuple[str, int]]:
        """Distinct (function, line) statements, in first-step order.

        Detection rows (racing accesses, null-origin hops) are sketch
        content like any other row: the line that created a null three
        frames away *is* part of what the developer reads.
        """
        seen: Set[Tuple[str, int]] = set()
        out: List[Tuple[str, int]] = []
        for step in self.steps + self.race_steps + self.origin_steps:
            key = (step.func, step.line)
            if key not in seen:
                seen.add(key)
                out.append(key)
        return out

    def size_loc(self) -> int:
        return len(self.statements())

    def size_ir(self) -> int:
        return len(self.statement_uids)

    def contains_statements(self, statements: Sequence[Tuple[str, int]]) -> bool:
        """Does the sketch show every one of these statements?  This is the
        oracle the evaluation uses for "the sketch contains the root
        cause"."""
        have = set(self.statements())
        return all(s in have for s in statements)


def _predictor_uids(stats: Optional[PredictorStats]) -> Set[int]:
    if stats is None:
        return set()
    p = stats.predictor
    if p.kind in ("branch", "value", "vrange"):
        return {p.detail[0]}
    return set(p.detail[1])


def build_sketch(
    module: Module,
    bug: str,
    failure: FailureReport,
    refinement: RefinementResult,
    failing_run: MonitoredRun,
    best_predictors: Dict[str, PredictorStats],
    sigma: int = 0,
    iterations: int = 0,
    failure_recurrences: int = 0,
) -> FailureSketch:
    """Assemble a failure sketch from one AsT iteration's artifacts."""
    refined = refinement.refined_uids()
    highlight_uids: Set[int] = set()
    for stats in best_predictors.values():
        highlight_uids |= _predictor_uids(stats)

    # Value and order predictors are memory-anchored facts that belong in
    # the sketch even when their statement fell outside the refined window
    # (e.g. a store discovered only in successful runs).  A branch
    # predictor, by contrast, only *marks* statements already shown.
    anchored_highlights: Set[int] = set()
    for kind in ("value", "order"):
        anchored_highlights |= _predictor_uids(best_predictors.get(kind))
    visible = refined | anchored_highlights
    events = [e for e in global_event_order(failing_run)
              if e.uid in visible]
    steps: List[SketchStep] = []
    threads: List[int] = []
    last_key: Optional[Tuple[int, str, int]] = None
    # Global access order at statement granularity, keyed by each
    # statement's LAST anchored occurrence: the occurrence adjacent to the
    # failure is the one whose ordering diagnoses the bug (a lock word is
    # read thousands of times; the read that matters is the final one).
    last_anchor: Dict[Tuple[str, int], Tuple[int, int, int]] = {}

    for event in events:
        ins = module.instr(event.uid)
        if ins.opcode is Opcode.ALLOCA:
            # Stack-slot setup is administrative, not a source statement;
            # a sketch shows executable statements (a declaration line such
            # as ``int i;`` lowers to nothing but an alloca).
            continue
        if ins.line == module.functions[ins.func_name].line:
            # Parameter-spill instructions carry the function header's line
            # number; headers are not steps either.
            continue
        key = (event.tid, ins.func_name, ins.line)
        if event.tid not in threads:
            threads.append(event.tid)
        if event.anchored:
            last_anchor[(ins.func_name, ins.line)] = event.sort_key
        # Merge into this thread's previous step when it is the same
        # statement: either immediately adjacent, or separated only by
        # other threads' *unanchored* steps (those carry no certain
        # cross-thread order, so pulling them together is sound).  An
        # intervening anchored step has watchpoint-certain order, and
        # genuine loop re-executions revisit the loop-condition line in
        # between — neither may be merged across.
        merge_target = None
        for prev in reversed(steps):
            if prev.tid == event.tid:
                if (prev.func, prev.line) == (ins.func_name, ins.line):
                    merge_target = prev
                break
            if prev.anchored:
                break
        if merge_target is not None:
            if event.anchored and event.value is not None:
                note = (ins.text or f"@{event.uid}", event.value)
                if note not in merge_target.values:
                    merge_target.values.append(note)
            merge_target.highlight = merge_target.highlight or \
                event.uid in highlight_uids
            merge_target.anchored = merge_target.anchored or event.anchored
            continue
        last_key = key
        step = SketchStep(
            order=len(steps) + 1,
            tid=event.tid,
            uid=event.uid,
            func=ins.func_name,
            line=ins.line,
            source=module.source_line(ins.line),
            highlight=event.uid in highlight_uids,
            anchored=event.anchored,
        )
        if event.anchored and event.value is not None:
            step.values.append((ins.text or f"@{event.uid}", event.value))
        steps.append(step)

    steps = _collapse_cycles(steps)
    steps = _bound_steps(steps)
    for i, step in enumerate(steps):
        step.order = i + 1
    access_order = sorted(last_anchor, key=lambda k: last_anchor[k])

    failure_type = _classify(failure, threads)
    race_steps = _race_steps(module, failure.race)
    origin_steps = _origin_steps(module, failure.origin)
    statement_uids = set(refined)
    statement_uids.update(s.uid for s in race_steps)
    statement_uids.update(s.uid for s in origin_steps)
    return FailureSketch(
        bug=bug,
        failure_type=failure_type,
        module_name=module.name,
        failing_uid=failure.pc,
        threads=sorted(threads),
        steps=steps,
        statement_uids=statement_uids,
        access_order=access_order,
        predictors=dict(best_predictors),
        sigma=sigma,
        iterations=iterations,
        failure_recurrences=failure_recurrences,
        race_steps=race_steps,
        race_address=failure.race.address if failure.race else None,
        origin_steps=origin_steps,
    )


def _race_steps(module: Module,
                race: Optional[RaceInfo]) -> List[SketchStep]:
    """The two racing accesses as sketch rows, in access order."""
    if race is None:
        return []
    steps = []
    for i, access in enumerate((race.first, race.second)):
        ins = module.instr(access.pc)
        steps.append(SketchStep(
            order=i + 1,
            tid=access.tid,
            uid=access.pc,
            func=ins.func_name,
            line=ins.line,
            source=module.source_line(ins.line),
            highlight=True,
            role="race write" if access.is_write else "race read",
        ))
    return steps


def _origin_steps(module: Module,
                  origin: Sequence[OriginHop]) -> List[SketchStep]:
    """A null-pointer causality chain as sketch rows, in hop order."""
    steps = []
    for i, hop in enumerate(origin):
        ins = module.instr(hop.pc)
        step = SketchStep(
            order=i + 1,
            tid=hop.tid,
            uid=hop.pc,
            func=ins.func_name,
            line=ins.line,
            source=module.source_line(ins.line),
            highlight=hop.kind == "origin",
            role=hop.kind,
        )
        if hop.address is not None:
            step.values.append(("addr", hop.address))
        steps.append(step)
    return steps


def _collapse_cycles(steps: List[SketchStep]) -> List[SketchStep]:
    """Fold repeated loop cycles: ``A B A B A B`` becomes the first cycle
    plus the last (which carries the final, failure-adjacent values),
    marked with the repeat count.  The paper's sketches show each
    statement once, not once per loop iteration."""
    keys = [(s.tid, s.func, s.line) for s in steps]
    out: List[SketchStep] = []
    i = 0
    while i < len(steps):
        collapsed = False
        for period in (1, 2, 3):
            if i + 2 * period > len(steps):
                continue
            cycles = 1
            while keys[i + cycles * period: i + (cycles + 1) * period] \
                    == keys[i: i + period]:
                cycles += 1
            if cycles >= 3:
                out.extend(steps[i: i + period])
                last = steps[i + (cycles - 1) * period: i + cycles * period]
                for step in last:
                    step.repeats = cycles
                out.extend(last)
                i += cycles * period
                collapsed = True
                break
        if not collapsed:
            out.append(steps[i])
            i += 1
    return out


def _bound_steps(steps: List[SketchStep]) -> List[SketchStep]:
    """Keep sketches readable when loops repeat statements many times:
    preserve the head and tail of the step list (the tail is where the
    failure is) within the MAX_STEPS budget."""
    if len(steps) <= MAX_STEPS:
        return steps
    head = steps[: MAX_STEPS // 3]
    tail = steps[-(MAX_STEPS - len(head)):]
    return head + tail


def _classify(failure: FailureReport, threads: List[int]) -> str:
    flavor = "Concurrency bug" if len(threads) > 1 else "Sequential bug"
    return f"{flavor}, {failure.kind.value}"
