"""The paper's contribution: failure sketching (Gist).

Modules map to the paper's design sections:

- :mod:`repro.core.adaptive` — Adaptive Slice Tracking (§3.2.1)
- :mod:`repro.core.refinement` — slice refinement (§3.2.2, §3.2.3)
- :mod:`repro.core.predictors` / :mod:`repro.core.stats` — root cause
  identification (§3.3)
- :mod:`repro.core.sketch` / :mod:`repro.core.render` — the artifact
- :mod:`repro.core.accuracy` — §5.2's metrics
- :mod:`repro.core.server` / :mod:`repro.core.client` /
  :mod:`repro.core.cooperative` — the cooperative deployment (Fig. 2)
- :mod:`repro.core.gist` — the one-call facade
"""

from .accuracy import AccuracyReport, IdealSketch, kendall_tau_distance, score
from .clustering import FailureBucket, FailureClusterer
from .adaptive import DEFAULT_SIGMA, AdaptiveSliceTracker, AstIteration
from .client import ClientRunResult, GistClient
from .cooperative import CampaignStats, CooperativeDeployment
from .gist import DiagnosisResult, Gist
from .html import render_html
from .predictors import (
    ATOMICITY_PATTERNS,
    Predictor,
    RACE_PATTERNS,
    VALUE_RELATIONS,
    extract_all,
    extract_branch_predictors,
    extract_order_predictors,
    extract_range_predictors,
    extract_value_predictors,
)
from .privacy import Anonymizer, ValuePolicy, information_shipped
from .serialize import sketch_from_json, sketch_to_json
from .refinement import (
    MonitoredRun,
    OrderedEvent,
    RefinementResult,
    global_event_order,
    refine,
)
from .render import render_compact, render_sketch
from .server import DiagnosisCampaign, GistServer, IterationResult
from .sketch import FailureSketch, SketchStep, build_sketch
from .stats import DEFAULT_BETA, PredictorRanker, PredictorStats, f_measure
from .workload import Workload, WorkloadFactory, constant_factory, mixed_factory

__all__ = [
    "ATOMICITY_PATTERNS",
    "AccuracyReport",
    "AdaptiveSliceTracker",
    "AstIteration",
    "CampaignStats",
    "ClientRunResult",
    "CooperativeDeployment",
    "DEFAULT_BETA",
    "DEFAULT_SIGMA",
    "DiagnosisCampaign",
    "DiagnosisResult",
    "FailureSketch",
    "Gist",
    "GistClient",
    "GistServer",
    "IdealSketch",
    "IterationResult",
    "MonitoredRun",
    "OrderedEvent",
    "Predictor",
    "PredictorRanker",
    "PredictorStats",
    "RACE_PATTERNS",
    "RefinementResult",
    "SketchStep",
    "Workload",
    "WorkloadFactory",
    "build_sketch",
    "constant_factory",
    "extract_all",
    "extract_branch_predictors",
    "extract_order_predictors",
    "extract_range_predictors",
    "extract_value_predictors",
    "f_measure",
    "global_event_order",
    "kendall_tau_distance",
    "mixed_factory",
    "refine",
    "render_compact",
    "render_html",
    "render_sketch",
    "score",
    "sketch_from_json",
    "sketch_to_json",
    "Anonymizer",
    "FailureBucket",
    "FailureClusterer",
    "VALUE_RELATIONS",
    "ValuePolicy",
    "information_shipped",
]
