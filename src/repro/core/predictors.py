"""Failure predictor extraction (§3.3).

A failure predictor is "a predicate that, when true, predicts that a failure
will occur".  Gist extracts three families from each monitored run and later
correlates them with run outcomes:

- **Branch predictors** — a conditional branch in the tracked region taking
  a particular direction (sequential bugs, e.g. Curl's unbalanced-brace
  loop).
- **Value predictors** — a tracked memory location holding a particular
  value at a particular statement (e.g. ``urls->current == 0``,
  ``obj->refcnt == 0``).
- **Concurrency-pattern predictors** — the single-variable atomicity
  violation patterns RWR / WWR / RWW / WRW and the data-race / order
  patterns WW / WR / RW (Fig. 5), matched over the *globally ordered*
  watchpoint access log, per address.

Predictor identity is structural (instruction uids + pattern shape), never
raw addresses, so the same predictor matches across runs whose heap layout
differs — this is what lets statistics accumulate across a fleet of
endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from .refinement import MonitoredRun

ATOMICITY_PATTERNS = ("RWR", "WWR", "RWW", "WRW")
RACE_PATTERNS = ("WW", "WR", "RW")


@dataclass(frozen=True)
class Predictor:
    """One failure predictor.

    ``kind`` ∈ {"branch", "value", "order"}; ``detail`` is the
    kind-specific identity:

    - branch: ``(branch_uid, taken)``
    - value:  ``(access_uid, value)``
    - order:  ``(pattern, (uid1, uid2[, uid3]))``
    """

    kind: str
    detail: Tuple

    def describe(self, module=None) -> str:
        if self.kind == "branch":
            uid, taken = self.detail
            arm = "taken" if taken else "not taken"
            where = _where(module, uid)
            return f"branch@{uid}{where} {arm}"
        if self.kind == "value":
            uid, value = self.detail
            where = _where(module, uid)
            return f"value@{uid}{where} == {value}"
        if self.kind == "vrange":
            uid, relation = self.detail
            where = _where(module, uid)
            return f"value@{uid}{where} {relation}"
        pattern, uids = self.detail
        chain = " -> ".join(str(u) for u in uids)
        return f"{pattern}({chain})"


def _where(module, uid: int) -> str:
    if module is None:
        return ""
    ins = module.instr(uid)
    return f" ({ins.func_name}:{ins.line})"


# ---------------------------------------------------------------------------
# Wire form
# ---------------------------------------------------------------------------
# Predictor identity is pure structure (strings, ints, bools, nested
# tuples), so it maps onto JSON directly: tuples become lists on the way
# out and come back as tuples.  The set form is *canonical* — sorted by
# kind then detail — so equal predictor sets always encode to identical
# bytes, preserving the wire layer's content-digest idempotency.


def _detail_to_jsonable(value):
    if isinstance(value, tuple):
        return [_detail_to_jsonable(v) for v in value]
    return value


def _detail_from_jsonable(value):
    if isinstance(value, list):
        return tuple(_detail_from_jsonable(v) for v in value)
    return value


def predictor_sort_key(predictor: "Predictor") -> Tuple[str, str]:
    """Deterministic total order over predictors (for canonical encoding)."""
    return (predictor.kind, repr(predictor.detail))


def predictors_to_body(predictors) -> List[List]:
    """Canonical JSON body of a predictor set: sorted [kind, detail] pairs."""
    ordered = sorted(predictors, key=predictor_sort_key)
    return [[p.kind, _detail_to_jsonable(p.detail)] for p in ordered]


def predictors_from_body(body: List[List]) -> frozenset:
    """Decode :func:`predictors_to_body` output back into a frozenset.

    Raises ``ValueError`` on malformed entries (the wire layer converts
    that into its own :class:`~repro.fleet.wire.WireError`).
    """
    out = set()
    for entry in body:
        if not (isinstance(entry, list) and len(entry) == 2
                and isinstance(entry[0], str)
                and isinstance(entry[1], list)):
            raise ValueError("malformed predictor entry")
        out.add(Predictor(entry[0], _detail_from_jsonable(entry[1])))
    return frozenset(out)


def predictor_counts_to_body(counts: Dict["Predictor", int]) -> List[List]:
    """Canonical JSON body of a predictor→count map: sorted
    ``[kind, detail, count]`` triples — how a shard's partial ranker
    counts travel over the wire for cross-shard merging."""
    ordered = sorted(counts, key=predictor_sort_key)
    return [[p.kind, _detail_to_jsonable(p.detail), counts[p]]
            for p in ordered]


def predictor_counts_from_body(body: List[List]) -> Dict["Predictor", int]:
    """Decode :func:`predictor_counts_to_body` output.  Raises
    ``ValueError`` on malformed entries."""
    out: Dict[Predictor, int] = {}
    for entry in body:
        if not (isinstance(entry, list) and len(entry) == 3
                and isinstance(entry[0], str)
                and isinstance(entry[1], list)
                and isinstance(entry[2], int)
                and not isinstance(entry[2], bool)):
            raise ValueError("malformed predictor count entry")
        out[Predictor(entry[0], _detail_from_jsonable(entry[1]))] = entry[2]
    return out


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


def extract_branch_predictors(run: MonitoredRun,
                              module) -> Set[Predictor]:
    """(branch_uid, taken) facts from the decoded control flow."""
    from ..lang.ir import Opcode

    out: Set[Predictor] = set()
    for tid, seq in run.executed.items():
        for i, uid in enumerate(seq):
            ins = module.instr(uid)
            if ins.opcode is not Opcode.BR or i + 1 >= len(seq):
                continue
            nxt_uid = seq[i + 1]
            nxt = module.instr(nxt_uid)
            if nxt.block_label == ins.labels[0] and \
                    nxt.index_in_block == 0 and \
                    nxt.func_name == ins.func_name:
                out.add(Predictor("branch", (uid, True)))
            elif nxt.block_label == ins.labels[1] and \
                    nxt.index_in_block == 0 and \
                    nxt.func_name == ins.func_name:
                out.add(Predictor("branch", (uid, False)))
    return out


def extract_value_predictors(run: MonitoredRun) -> Set[Predictor]:
    """(access_uid, value) facts from watchpoint traps."""
    return {Predictor("value", (trap.pc, trap.value))
            for trap in run.traps}


#: Derived relations for extended value predicates (§6: "we plan to track
#: range and inequality predicates in Gist").  Each maps a value to a
#: boolean; a predictor is emitted only for relations that hold.
VALUE_RELATIONS: Tuple[Tuple[str, object], ...] = (
    ("== 0", lambda v: v == 0),
    ("< 0", lambda v: v < 0),
    ("> 0", lambda v: v > 0),
    ("odd", lambda v: v % 2 == 1),
    ("even", lambda v: v % 2 == 0),
)


def extract_range_predictors(run: MonitoredRun) -> Set[Predictor]:
    """Inequality/range predicates over tracked values (§6 future work).

    Where plain value predictors need the exact failing value to recur
    (``refcnt == 0``), range predicates generalize across runs whose values
    differ but share the failure-relevant property (``version is odd``,
    ``len < 0``).  Identity: ``("vrange", (uid, relation))``.
    """
    out: Set[Predictor] = set()
    for trap in run.traps:
        for name, holds in VALUE_RELATIONS:
            if holds(trap.value):
                out.add(Predictor("vrange", (trap.pc, name)))
    return out


def extract_order_predictors(run: MonitoredRun) -> Set[Predictor]:
    """Concurrency patterns from the per-address global access order.

    For every watched address, consecutive access pairs from different
    threads yield WW/WR/RW race patterns; consecutive triples whose outer
    accesses share a thread and whose middle access comes from another
    thread yield the four atomicity-violation patterns (Fig. 5/6).
    """
    out: Set[Predictor] = set()
    by_addr: Dict[int, List] = {}
    for trap in sorted(run.traps, key=lambda t: t.seq):
        by_addr.setdefault(trap.address, []).append(trap)
    for accesses in by_addr.values():
        for a, b in zip(accesses, accesses[1:]):
            if a.tid != b.tid:
                pattern = _letter(a) + _letter(b)
                if pattern in RACE_PATTERNS:  # RR is not a race
                    out.add(Predictor("order", (pattern, (a.pc, b.pc))))
        for a, b, c in zip(accesses, accesses[1:], accesses[2:]):
            if a.tid == c.tid and a.tid != b.tid:
                pattern = _letter(a) + _letter(b) + _letter(c)
                if pattern in ATOMICITY_PATTERNS:
                    out.add(Predictor("order", (pattern, (a.pc, b.pc, c.pc))))
    return out


def _letter(trap) -> str:
    return "W" if trap.is_write else "R"


def extract_all(run: MonitoredRun, module,
                extended: bool = False) -> Set[Predictor]:
    """Every predictor present in one run.

    ``extended`` additionally emits the §6 range/inequality predicates.
    """
    out = extract_branch_predictors(run, module)
    out |= extract_value_predictors(run)
    out |= extract_order_predictors(run)
    if extended:
        out |= extract_range_predictors(run)
    return out
