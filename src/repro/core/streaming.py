"""Bounded-memory streaming statistics (§3.3 at production traffic).

The exact statistics layer (:mod:`repro.core.stats`) keeps one dict entry
per distinct predictor and one log entry per ingested run — at the
ROADMAP's "millions of users" that is O(runs) memory on every shard.  This
module is the bounded counterpart, selected with ``--stats streaming``:

- :class:`CountMinSketch` — the classic conservative overestimating
  counter array, here with sparse rows and ``crc32``-based row hashing so
  two processes (or two shards) sketch identically regardless of
  ``PYTHONHASHSEED``.
- :class:`SketchRanker` — a drop-in :class:`PredictorRanker` whose
  resident per-predictor counts are a Space-Saving style top-K table
  (evicted tails spill into the sketch), with exact outcome totals, a
  per-entry :meth:`SketchRanker.error_bound`, and a mergeable
  :meth:`SketchRanker.state` that rides the same ``shard_state`` wire
  envelopes as the exact ranker.
- :class:`RollingWindowStats` — a ring of per-window count deltas so long
  campaigns rank on *recent* behaviour: a predictor that stopped
  recurring ages out after ``windows`` AsT iterations, and the windowed
  recurrence total is what feeds the budget scheduler's infogain signal.
- :class:`ReservoirSample` — seeded Algorithm R; the campaign's retained
  run evidence in streaming mode (replacing the hold-everything lists).
- :class:`RunningRefinement` — the streaming form of
  :func:`repro.core.refinement.refine`: refinement only ever consumes the
  executed-uid union and the trap ``(pc, is_write)`` pairs of a run list,
  both bounded by program size, so this aggregate is *exact* — streaming
  campaigns refine byte-identically while retaining O(1) runs.

Exact mode stays the byte-identical reference; nothing here changes any
``--stats exact`` code path.
"""

from __future__ import annotations

import zlib
from collections import Counter
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..detect.invariants import ErrorInvariantRanker
from .predictors import Predictor, predictor_sort_key
from .refinement import MonitoredRun, RefinementResult
from .stats import DEFAULT_BETA, PredictorRanker

#: Statistics modes a deployment can run in.
STATS_KINDS = ("exact", "streaming")

#: Default count-min dimensions.  Width 512 × depth 3 bounds the expected
#: per-key overestimate to ~3·N/512 with three independent chances to do
#: better — ample for per-campaign predictor populations, and ~1.5k sparse
#: cells worst case.
DEFAULT_SKETCH_WIDTH = 512
DEFAULT_SKETCH_DEPTH = 3
#: Default Space-Saving table capacity (resident predictors per stripe).
DEFAULT_CAPACITY = 128
#: Default rolling-window ring length (AsT iterations of recency).
DEFAULT_WINDOWS = 8
#: Default retained-run reservoir size per campaign.
DEFAULT_RESERVOIR = 64


def predictor_key_bytes(predictor: Predictor) -> bytes:
    """Canonical hashable identity of a predictor for sketching.

    ``repr`` over the (str, int, bool, tuple) detail structure is
    deterministic across processes — unlike builtin ``hash``, which
    ``PYTHONHASHSEED`` perturbs per interpreter.
    """
    return f"{predictor.kind}:{predictor.detail!r}".encode()


class CountMinSketch:
    """A sparse count-min sketch with deterministic crc32 row hashing."""

    __slots__ = ("width", "depth", "_rows")

    def __init__(self, width: int = DEFAULT_SKETCH_WIDTH,
                 depth: int = DEFAULT_SKETCH_DEPTH) -> None:
        if width < 1 or depth < 1:
            raise ValueError("sketch needs width >= 1 and depth >= 1")
        self.width = width
        self.depth = depth
        # Sparse rows: most campaigns touch far fewer cells than width.
        self._rows: List[Dict[int, int]] = [dict() for _ in range(depth)]

    def _indexes(self, key: bytes) -> List[int]:
        # crc32's second argument is the starting CRC value: distinct
        # per-row starts give depth independent-enough hash functions.
        return [zlib.crc32(key, row + 1) % self.width
                for row in range(self.depth)]

    def add(self, key: bytes, count: int = 1) -> None:
        for row, idx in enumerate(self._indexes(key)):
            cells = self._rows[row]
            cells[idx] = cells.get(idx, 0) + count

    def estimate(self, key: bytes) -> int:
        """Point estimate: min over rows.  Never underestimates."""
        return min(self._rows[row].get(idx, 0)
                   for row, idx in enumerate(self._indexes(key)))

    def cells_used(self) -> int:
        return sum(len(row) for row in self._rows)

    def merge(self, other: "CountMinSketch") -> None:
        """Cell-wise addition — valid only for identical dimensions."""
        if (other.width, other.depth) != (self.width, self.depth):
            raise ValueError("cannot merge sketches with different "
                             "dimensions")
        for mine, theirs in zip(self._rows, other._rows):
            for idx, count in theirs.items():
                mine[idx] = mine.get(idx, 0) + count

    def state(self) -> Dict[str, Any]:
        return {
            "width": self.width,
            "depth": self.depth,
            "rows": [sorted([idx, count] for idx, count in row.items())
                     for row in self._rows],
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "CountMinSketch":
        sketch = cls(width=state["width"], depth=state["depth"])
        rows = state["rows"]
        if len(rows) != sketch.depth:
            raise ValueError("sketch state rows do not match depth")
        for row, cells in zip(sketch._rows, rows):
            for idx, count in cells:
                row[idx] = count
        return sketch


class SketchRanker(PredictorRanker):
    """A :class:`PredictorRanker` with O(K) resident state.

    The inherited ``_failing_counts``/``_successful_counts`` dicts hold
    only the top-``capacity`` *resident* predictors (so every inherited
    scoring path — ``stats_for``, ``ranked``, ``best_per_kind``, tie
    breaks — works unchanged over the heavy-hitters table), while every
    occurrence is also folded into a pair of count-min sketches.  When the
    table is full, the Space-Saving rule applies: the entry with the
    smallest combined total is evicted, and the newcomer inherits that
    total as its per-entry overestimation error.

    Exactness guarantees: outcome totals (``total_failing``,
    ``total_successful``) are always exact, and until the first eviction
    (fewer distinct predictors than ``capacity`` — true of every corpus
    bug) resident counts, and therefore the full ranking, are *identical*
    to the exact ranker's.
    """

    def __init__(self, beta: float = DEFAULT_BETA,
                 failure_pc: Optional[int] = None,
                 capacity: int = DEFAULT_CAPACITY,
                 sketch_width: int = DEFAULT_SKETCH_WIDTH,
                 sketch_depth: int = DEFAULT_SKETCH_DEPTH) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        super().__init__(beta=beta, failure_pc=failure_pc)
        self.capacity = capacity
        self._cms_failing = CountMinSketch(sketch_width, sketch_depth)
        self._cms_successful = CountMinSketch(sketch_width, sketch_depth)
        #: Per-resident inherited overestimation (0 until an eviction
        #: chain reaches the entry).  Its key set *is* the resident set.
        self._error: Dict[Predictor, int] = {}

    # -- residency -----------------------------------------------------------

    def _resident_total(self, predictor: Predictor) -> int:
        return (self._failing_counts.get(predictor, 0)
                + self._successful_counts.get(predictor, 0))

    def _evict_min(self) -> int:
        """Drop the smallest resident entry; return its combined total."""
        victim = min(self._error,
                     key=lambda q: (self._resident_total(q),
                                    predictor_sort_key(q)))
        total = self._resident_total(victim)
        self._failing_counts.pop(victim, None)
        self._successful_counts.pop(victim, None)
        del self._error[victim]
        return total

    def add_run(self, predictors: Iterable[Predictor], failed: bool,
                weight: int = 1) -> None:
        if weight < 1:
            raise ValueError("weight must be >= 1")
        seen = set(predictors)
        if failed:
            self.total_failing += weight
            counts, sketch = self._failing_counts, self._cms_failing
        else:
            self.total_successful += weight
            counts, sketch = self._successful_counts, self._cms_successful
        for p in seen:
            sketch.add(predictor_key_bytes(p), weight)
            if p in self._error:
                counts[p] = counts.get(p, 0) + weight
            elif len(self._error) < self.capacity:
                self._error[p] = 0
                counts[p] = counts.get(p, 0) + weight
            else:
                # Space-Saving: the newcomer replaces the lightest
                # resident, inheriting its total as error.
                inherited = self._evict_min()
                self._error[p] = inherited
                counts[p] = inherited + weight

    # -- error bounds --------------------------------------------------------

    def entry_error(self, predictor: Predictor) -> Optional[int]:
        """Max overcount of a resident predictor (None if not resident)."""
        return self._error.get(predictor)

    def error_bound(self) -> int:
        """Max overcount across all resident entries: every resident's
        tracked combined total lies in ``[true, true + error_bound()]``."""
        return max(self._error.values(), default=0)

    def estimate_total(self, predictor: Predictor) -> int:
        """Combined occurrence estimate for *any* predictor: the resident
        count when resident, else the count-min estimate (both are
        overestimates, never under)."""
        if predictor in self._error:
            return self._resident_total(predictor)
        key = predictor_key_bytes(predictor)
        return (self._cms_failing.estimate(key)
                + self._cms_successful.estimate(key))

    # -- merging -------------------------------------------------------------

    def merge(self, other: "PredictorRanker") -> None:
        """Mergeable-summaries fold (Agarwal et al.): union the resident
        tables summing counts and inherited errors, add the sketches
        cell-wise, then keep the top-``capacity`` entries by combined
        total.  Deterministic and commutative, so shard-merge results are
        independent of fold order."""
        if not isinstance(other, SketchRanker):
            raise ValueError("cannot merge a non-sketch ranker into a "
                             "SketchRanker")
        if other.beta != self.beta or other.failure_pc != self.failure_pc:
            raise ValueError("cannot merge rankers with different "
                             "beta/failure_pc")
        if other.capacity != self.capacity:
            raise ValueError("cannot merge sketch rankers with different "
                             "capacity")
        self.total_failing += other.total_failing
        self.total_successful += other.total_successful
        self._cms_failing.merge(other._cms_failing)
        self._cms_successful.merge(other._cms_successful)
        for p, err in other._error.items():
            self._error[p] = self._error.get(p, 0) + err
        self._failing_counts.update(other._failing_counts)
        self._successful_counts.update(other._successful_counts)
        while len(self._error) > self.capacity:
            self._evict_min()

    # -- snapshots -----------------------------------------------------------

    def state(self) -> Dict[str, Any]:
        state = super().state()
        state["kind"] = "sketch"
        state["capacity"] = self.capacity
        state["error"] = dict(self._error)
        state["cms_failing"] = self._cms_failing.state()
        state["cms_successful"] = self._cms_successful.state()
        return state

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "SketchRanker":
        if state.get("kind") != "sketch":
            raise ValueError("not a sketch-ranker state")
        cms = CountMinSketch.from_state(state["cms_failing"])
        ranker = cls(beta=state["beta"], failure_pc=state["failure_pc"],
                     capacity=state["capacity"],
                     sketch_width=cms.width, sketch_depth=cms.depth)
        ranker.total_failing = state["total_failing"]
        ranker.total_successful = state["total_successful"]
        ranker._failing_counts = Counter(state["failing"])
        ranker._successful_counts = Counter(state["successful"])
        ranker._error = dict(state["error"])
        ranker._cms_failing = cms
        ranker._cms_successful = CountMinSketch.from_state(
            state["cms_successful"])
        return ranker

    def tracked_bytes(self) -> int:
        approx = super().tracked_bytes()
        approx += len(self._error) * 64
        approx += (self._cms_failing.cells_used()
                   + self._cms_successful.cells_used()) * 48
        return approx


class InvariantSketchRanker(SketchRanker, ErrorInvariantRanker):
    """Sketched accumulation with error-invariant scoring: the MRO takes
    residency/merging from :class:`SketchRanker` and ``stats_for`` from
    :class:`ErrorInvariantRanker`."""


def make_stream_ranker(kind: str, beta: float = DEFAULT_BETA,
                       failure_pc: Optional[int] = None,
                       capacity: int = DEFAULT_CAPACITY) -> SketchRanker:
    """The streaming-mode counterpart of
    :func:`repro.detect.invariants.make_ranker`."""
    if kind == "fmeasure":
        return SketchRanker(beta=beta, failure_pc=failure_pc,
                            capacity=capacity)
    if kind == "invariants":
        return InvariantSketchRanker(beta=beta, failure_pc=failure_pc,
                                     capacity=capacity)
    raise ValueError(f"unknown ranker kind {kind!r}")


def ranker_from_state(state: Dict[str, Any]) -> PredictorRanker:
    """Reconstruct a ranker snapshot of either statistics mode: sketch
    states carry ``"kind": "sketch"``; exact states have no kind key (the
    pre-streaming wire shape, preserved byte-for-byte)."""
    if state.get("kind") == "sketch":
        return SketchRanker.from_state(state)
    return PredictorRanker.from_state(state)


def _canonical_len(body: Any) -> int:
    # Mirrors the wire layer's canonical encoding (sorted keys, compact
    # separators), so the byte accounting below is exact for the section
    # bytes a sliced run saves on the uplink.
    import json

    return len(json.dumps(body, sort_keys=True, separators=(",", ":")))


def slice_monitored_run(run: MonitoredRun, patch) -> Tuple[int, int]:
    """Client-side evidence slicing (*Slicing Event Traces*, PAPERS.md).

    Prunes ``run``'s executed sequences in place down to the patch's
    slice: each thread keeps only uids in the slice ∪ hook uids ∪ this
    run's trapped pcs (order and multiplicity preserved).  Trap records
    and the extracted predictor set are never touched — traps carry the
    global order and the discovered statements, and predictors (already
    distilled client-side, a few dozen entries against executed
    sequences' thousands) feed the ranking verbatim so the streaming
    sketch stays byte-identical to the exact reference.

    Sound for refinement by construction: the AsT window is a subset of
    the static slice, so ``window ∩ executed`` — the only thing
    :func:`refine` reads from executed sequences — is unchanged.

    Returns ``(bytes_saved, bytes_after)`` measured over the canonical
    wire body, so payload accounting reflects real uplink bytes.
    """
    from ..fleet.wire import monitored_run_to_body  # local: layering

    keep = set(patch.slice_uids)
    keep.update(hook.uid for hook in patch.hooks)
    keep.update(trap.pc for trap in run.traps)
    before = _canonical_len(monitored_run_to_body(run))
    run.executed = {tid: [uid for uid in seq if uid in keep]
                    for tid, seq in run.executed.items()}
    after = _canonical_len(monitored_run_to_body(run))
    return before - after, after


class RollingWindowStats:
    """A ring of per-window predictor-count deltas (recency weighting).

    One window per AsT iteration: :meth:`advance` seals the current window
    and drops the oldest beyond ``windows``.  Scores computed over the
    ring's sums are F-measures of the *recent* campaign only, so a
    predictor that has converged (stopped recurring) ages out of the
    infogain signal instead of coasting on stale counts forever.
    """

    __slots__ = ("windows", "beta", "failure_pc", "dropped", "_ring")

    def __init__(self, windows: int = DEFAULT_WINDOWS,
                 beta: float = DEFAULT_BETA,
                 failure_pc: Optional[int] = None) -> None:
        if windows < 1:
            raise ValueError("need at least one window")
        self.windows = windows
        self.beta = beta
        self.failure_pc = failure_pc
        #: Windows that have aged out of the ring so far.
        self.dropped = 0
        # Each entry: [failing Counter, successful Counter, tf, ts].
        self._ring: List[List[Any]] = [[Counter(), Counter(), 0, 0]]

    def add(self, predictors: Iterable[Predictor], failed: bool,
            weight: int = 1) -> None:
        current = self._ring[-1]
        seen = set(predictors)
        if failed:
            current[2] += weight
            counter = current[0]
        else:
            current[3] += weight
            counter = current[1]
        for p in seen:
            counter[p] += weight

    def advance(self) -> None:
        """Seal the current window and open a fresh one."""
        self._ring.append([Counter(), Counter(), 0, 0])
        if len(self._ring) > self.windows:
            del self._ring[0]
            self.dropped += 1

    def recurrences(self) -> int:
        """Failing-run total across the ring — the windowed recurrence
        signal the budget scheduler weighs campaigns by."""
        return sum(entry[2] for entry in self._ring)

    def totals(self) -> Tuple[int, int]:
        return (sum(entry[2] for entry in self._ring),
                sum(entry[3] for entry in self._ring))

    def ranker(self, ranker_cls=PredictorRanker) -> PredictorRanker:
        """An exact ranker over the ring's summed counts — windowed
        F-measures with the full scoring/tie-break machinery."""
        failing: Counter = Counter()
        successful: Counter = Counter()
        for entry in self._ring:
            failing.update(entry[0])
            successful.update(entry[1])
        tf, ts = self.totals()
        return ranker_cls.from_state({
            "beta": self.beta, "failure_pc": self.failure_pc,
            "total_failing": tf, "total_successful": ts,
            "failing": failing, "successful": successful,
        })

    def tracked_bytes(self) -> int:
        approx = 0
        for entry in self._ring:
            approx += (len(entry[0]) + len(entry[1])) * 120 + 64
        return approx


class ReservoirSample:
    """Seeded Algorithm R: a uniform bounded sample of a stream."""

    __slots__ = ("capacity", "seen", "_rng", "_items")

    def __init__(self, capacity: int = DEFAULT_RESERVOIR,
                 seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        import random

        self.capacity = capacity
        self.seen = 0
        self._rng = random.Random(seed)
        self._items: List[Any] = []

    def add(self, item: Any) -> None:
        self.seen += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            return
        slot = self._rng.randrange(self.seen)
        if slot < self.capacity:
            self._items[slot] = item

    def items(self) -> List[Any]:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)


class RunningRefinement:
    """Streaming aggregate of exactly what :func:`refine` reads per run.

    ``refine`` folds each run into (a) the union of executed uids and
    (b) the set of trap ``(pc, is_write)`` pairs — both bounded by program
    size, never by run count — so a streaming campaign accumulates them
    run-by-run and produces a :class:`RefinementResult` identical to the
    exact mode's hold-every-run computation.
    """

    __slots__ = ("executed_uids", "_trap_pairs")

    def __init__(self) -> None:
        self.executed_uids: set = set()
        self._trap_pairs: set = set()

    def add(self, run: MonitoredRun) -> None:
        self.executed_uids |= run.executed_uids()
        for trap in run.traps:
            self._trap_pairs.add((trap.pc, trap.is_write))

    def result(self, window_uids: set,
               slice_uids: Optional[set] = None) -> RefinementResult:
        result = RefinementResult(window_uids=set(window_uids))
        result.executed_uids = set(self.executed_uids)
        for pc, is_write in self._trap_pairs:
            if pc in window_uids:
                continue
            if is_write or slice_uids is None or pc in slice_uids:
                result.discovered_uids.add(pc)
        result.removed_uids = result.window_uids - result.executed_uids
        return result

    def tracked_bytes(self) -> int:
        return (len(self.executed_uids) + len(self._trap_pairs)) * 32
