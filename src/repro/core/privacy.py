"""Client-side data anonymization (§6).

The paper flags the privacy cost of shipping data values from user
endpoints: "We plan to investigate ways to quantify and anonymize the
amount of information Gist ships from production runs."  This module
implements that future-work item as a client-side *value policy* applied to
the watchpoint trap log before a :class:`MonitoredRun` leaves the endpoint.

Three policies:

- ``RAW`` — ship exact values (data-center deployments, where "all the data
  that programs operate on is already within the data center").
- ``BUCKET`` — replace each value with a coarse, *deterministic* bucket
  (sign + magnitude class).  Deterministic matters: the same value buckets
  identically on every endpoint, so predictor statistics still aggregate
  across the fleet; only precision of the reported value is lost.
- ``HASH`` — replace each value with a salted, truncated hash.  Equality is
  preserved per deployment salt (so ``value == X`` predictors still
  correlate), but magnitude, sign, and orderings are destroyed and the
  original value cannot be recovered without the salt.

Zero keeps a distinguished bucket/hash in every policy: NULL-ness is the
single most diagnostic value property (Fig. 7's ``urls->current == 0``),
and anonymizing it away would gut sequential-bug diagnosis.
"""

from __future__ import annotations

import enum
import hashlib

from ..hw.watchpoints import TrapRecord
from .refinement import MonitoredRun


class ValuePolicy(enum.Enum):
    """How trap values are transformed before leaving an endpoint."""
    RAW = "raw"
    BUCKET = "bucket"
    HASH = "hash"


#: Magnitude class boundaries for the BUCKET policy.
_BUCKETS = (1, 10, 100, 1_000, 1_000_000)


def bucket_value(value: int) -> int:
    """Deterministic coarse bucket: 0 stays 0; otherwise sign * class.

    Classes: 1 → |v| < 10, 2 → |v| < 100, 3 → |v| < 1000,
    4 → |v| < 1e6, 5 → larger.
    """
    if value == 0:
        return 0
    magnitude = abs(value)
    for i, bound in enumerate(_BUCKETS[1:], start=1):
        if magnitude < bound:
            cls = i
            break
    else:
        cls = len(_BUCKETS)
    return cls if value > 0 else -cls


def hash_value(value: int, salt: bytes) -> int:
    """Salted 31-bit hash; 0 maps to 0 (NULL-ness survives)."""
    if value == 0:
        return 0
    digest = hashlib.sha256(salt + value.to_bytes(16, "little",
                                                  signed=True)).digest()
    hashed = int.from_bytes(digest[:4], "little") & 0x7FFFFFFF
    return hashed or 1  # never collide with the distinguished zero


class Anonymizer:
    """Applies a value policy to outbound monitored runs."""

    def __init__(self, policy: ValuePolicy = ValuePolicy.RAW,
                 salt: bytes = b"gist-deployment") -> None:
        self.policy = policy
        self.salt = salt

    def anonymize_value(self, value: int) -> int:
        if self.policy is ValuePolicy.RAW:
            return value
        if self.policy is ValuePolicy.BUCKET:
            return bucket_value(value)
        return hash_value(value, self.salt)

    def anonymize_trap(self, trap: TrapRecord) -> TrapRecord:
        new_value = self.anonymize_value(trap.value)
        if new_value == trap.value:
            return trap
        return TrapRecord(seq=trap.seq, tid=trap.tid, pc=trap.pc,
                          address=trap.address, is_write=trap.is_write,
                          value=new_value, slot=trap.slot)

    def anonymize_run(self, run: MonitoredRun) -> MonitoredRun:
        """A copy of ``run`` with its trap values transformed.

        Control flow, ordering (sequence numbers), addresses-as-grouping,
        and the failure report are untouched: the paper's concurrency
        diagnosis needs orders, not raw payloads.
        """
        if self.policy is ValuePolicy.RAW:
            return run
        return MonitoredRun(
            run_id=run.run_id,
            endpoint_id=run.endpoint_id,
            failed=run.failed,
            failure=run.failure,
            executed={tid: list(seq) for tid, seq in run.executed.items()},
            traps=[self.anonymize_trap(t) for t in run.traps],
            overhead=run.overhead,
            trace_bytes=run.trace_bytes,
            cohort=run.cohort,
        )


def information_shipped(run: MonitoredRun) -> int:
    """A crude §6-style quantification: bits of value payload in the run.

    Counts distinct (pc, value) pairs times a 64-bit value width; policies
    reduce it by collapsing values into buckets/hash classes.
    """
    distinct = {(t.pc, t.value) for t in run.traps}
    return 64 * len(distinct)
