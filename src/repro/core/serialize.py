"""Failure sketch serialization.

Sketches are the deliverable a Gist server hands to developers; shipping
them between machines (or into an issue tracker) needs a stable wire form.
``sketch_to_json`` / ``sketch_from_json`` round-trip every field, including
the ranked predictors.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from .predictors import Predictor
from .sketch import FailureSketch, SketchStep
from .stats import PredictorStats

FORMAT_VERSION = 1


def _predictor_to_dict(stats: PredictorStats) -> Dict[str, Any]:
    return {
        "kind": stats.predictor.kind,
        "detail": list(stats.predictor.detail)
        if not isinstance(stats.predictor.detail, tuple)
        else _tuple_to_list(stats.predictor.detail),
        "failing_with": stats.failing_with,
        "successful_with": stats.successful_with,
        "precision": stats.precision,
        "recall": stats.recall,
        "f_measure": stats.f_measure,
    }


def _tuple_to_list(value):
    if isinstance(value, tuple):
        return [_tuple_to_list(v) for v in value]
    return value


def _list_to_tuple(value):
    if isinstance(value, list):
        return tuple(_list_to_tuple(v) for v in value)
    return value


def _predictor_from_dict(payload: Dict[str, Any]) -> PredictorStats:
    predictor = Predictor(payload["kind"],
                          _list_to_tuple(payload["detail"]))
    return PredictorStats(
        predictor=predictor,
        failing_with=payload["failing_with"],
        successful_with=payload["successful_with"],
        precision=payload["precision"],
        recall=payload["recall"],
        f_measure=payload["f_measure"],
    )


def sketch_to_json(sketch: FailureSketch) -> str:
    """Serialize a sketch (steps, predictors, metadata) to JSON."""
    payload = {
        "version": FORMAT_VERSION,
        "bug": sketch.bug,
        "failure_type": sketch.failure_type,
        "module_name": sketch.module_name,
        "failing_uid": sketch.failing_uid,
        "threads": sketch.threads,
        "sigma": sketch.sigma,
        "iterations": sketch.iterations,
        "failure_recurrences": sketch.failure_recurrences,
        "statement_uids": sorted(sketch.statement_uids),
        "access_order": [list(k) for k in sketch.access_order],
        "steps": [_step_to_dict(s) for s in sketch.steps],
        "predictors": {kind: _predictor_to_dict(stats)
                       for kind, stats in sketch.predictors.items()},
    }
    # Detection rows are additive: sketches without them serialize to the
    # exact bytes version-1 readers already accept.
    if sketch.race_steps:
        payload["race_steps"] = [_step_to_dict(s) for s in sketch.race_steps]
        payload["race_address"] = sketch.race_address
    if sketch.origin_steps:
        payload["origin_steps"] = [_step_to_dict(s)
                                   for s in sketch.origin_steps]
    return json.dumps(payload, indent=2)


def _step_to_dict(s: SketchStep) -> Dict[str, Any]:
    payload = {
        "order": s.order,
        "tid": s.tid,
        "uid": s.uid,
        "func": s.func,
        "line": s.line,
        "source": s.source,
        "highlight": s.highlight,
        "anchored": s.anchored,
        "values": [[name, value] for name, value in s.values],
    }
    if s.role:
        payload["role"] = s.role
    return payload


def _step_from_dict(s: Dict[str, Any]) -> SketchStep:
    return SketchStep(
        order=s["order"], tid=s["tid"], uid=s["uid"], func=s["func"],
        line=s["line"], source=s["source"], highlight=s["highlight"],
        anchored=s["anchored"],
        values=[(name, value) for name, value in s["values"]],
        role=s.get("role", ""),
    )


def sketch_from_json(text: str) -> FailureSketch:
    """Inverse of :func:`sketch_to_json`; validates the format version."""
    payload = json.loads(text)
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported sketch format version {payload.get('version')!r}")
    steps = [_step_from_dict(s) for s in payload["steps"]]
    return FailureSketch(
        bug=payload["bug"],
        failure_type=payload["failure_type"],
        module_name=payload["module_name"],
        failing_uid=payload["failing_uid"],
        threads=list(payload["threads"]),
        steps=steps,
        statement_uids=set(payload["statement_uids"]),
        access_order=[tuple(k) for k in payload["access_order"]],
        predictors={kind: _predictor_from_dict(p)
                    for kind, p in payload["predictors"].items()},
        sigma=payload["sigma"],
        iterations=payload["iterations"],
        failure_recurrences=payload["failure_recurrences"],
        race_steps=[_step_from_dict(s)
                    for s in payload.get("race_steps", [])],
        race_address=payload.get("race_address"),
        origin_steps=[_step_from_dict(s)
                      for s in payload.get("origin_steps", [])],
    )
