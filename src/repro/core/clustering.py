"""WER-style failure report clustering (§7).

The paper positions Gist next to Windows Error Reporting: WER buckets
millions of failure reports by call-stack/error-code heuristics so that
each bucket maps to (hopefully) one bug, and "WER can use failure sketches
built by Gist to improve its clustering".  This module provides that
front-end: a :class:`FailureClusterer` ingests raw failure reports from the
fleet, buckets them, and decides which bucket deserves a diagnosis
campaign next.

Bucketing levels:

- **exact**: the paper's identity (failure kind + pc + stack functions) —
  what a :class:`~repro.core.server.DiagnosisCampaign` keys on;
- **site**: kind + failing pc only — merges exact buckets that differ only
  in the call path (the same cleanup routine reached from two callers is
  one bug, two exact identities);
- per-bucket occurrence counts and the representative report (the first
  seen, like WER's "hit" sample).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..runtime.failures import FailureReport


@dataclass
class FailureBucket:
    """One cluster of equivalent failure reports."""

    key: str
    kind: str
    pc: int
    representative: FailureReport
    #: Arrival ordinal of the bucket's first report (0-based).  Triage
    #: order tie-breaks on it so "which bucket next" is a total order.
    first_seen: int = 0
    count: int = 0
    exact_identities: Dict[str, int] = field(default_factory=dict)

    def add(self, report: FailureReport) -> None:
        self.count += 1
        identity = report.identity()
        self.exact_identities[identity] = \
            self.exact_identities.get(identity, 0) + 1

    @property
    def call_path_variants(self) -> int:
        """How many distinct call paths reach this failure site."""
        return len(self.exact_identities)


class FailureClusterer:
    """Buckets incoming failure reports by failure site."""

    def __init__(self) -> None:
        self._buckets: Dict[str, FailureBucket] = {}
        self.total_reports = 0

    @staticmethod
    def site_key(report: FailureReport) -> str:
        return f"{report.kind.value}@{report.pc}"

    def add(self, report: FailureReport) -> FailureBucket:
        self.total_reports += 1
        key = self.site_key(report)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = FailureBucket(key=key, kind=report.kind.value,
                                   pc=report.pc, representative=report,
                                   first_seen=self.total_reports - 1)
            self._buckets[key] = bucket
        bucket.add(report)
        return bucket

    def buckets(self) -> List[FailureBucket]:
        """All buckets, most-hit first (WER-style triage order).

        The order is total — count, then arrival order of the bucket's
        first report, then key — so two equally-hot buckets always triage
        the same way regardless of dict iteration or report interleaving.
        """
        return sorted(self._buckets.values(),
                      key=lambda b: (-b.count, b.first_seen, b.key))

    def bucket_for(self, report: FailureReport) -> Optional[FailureBucket]:
        return self._buckets.get(self.site_key(report))

    def next_to_diagnose(self,
                         already_diagnosed: Tuple[str, ...] = ()
                         ) -> Optional[FailureBucket]:
        """The most frequent bucket without a campaign yet — how a
        deployment prioritizes its diagnosis budget."""
        skip = set(already_diagnosed)
        for bucket in self.buckets():
            if bucket.key not in skip:
                return bucket
        return None

    def summary(self) -> str:
        lines = [f"{self.total_reports} reports in "
                 f"{len(self._buckets)} buckets"]
        for bucket in self.buckets():
            lines.append(
                f"  {bucket.key:<28} hits={bucket.count:<5} "
                f"call-paths={bucket.call_path_variants}")
        return "\n".join(lines)
