"""WER-style failure report clustering (§7).

The paper positions Gist next to Windows Error Reporting: WER buckets
millions of failure reports by call-stack/error-code heuristics so that
each bucket maps to (hopefully) one bug, and "WER can use failure sketches
built by Gist to improve its clustering".  This module provides that
front-end: a :class:`FailureClusterer` ingests raw failure reports from the
fleet, buckets them, and decides which bucket deserves a diagnosis
campaign next.

Bucketing levels:

- **exact**: the paper's identity (failure kind + pc + stack functions) —
  what a :class:`~repro.core.server.DiagnosisCampaign` keys on;
- **site**: kind + failing pc only — merges exact buckets that differ only
  in the call path (the same cleanup routine reached from two callers is
  one bug, two exact identities);
- per-bucket occurrence counts and the representative report (the first
  seen, like WER's "hit" sample).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..runtime.failures import FailureReport

#: Per-bucket exact-identity histogram cap used by streaming-mode shards.
#: Real fleets reach one failure site from a bounded set of call paths, so
#: a small cap loses nothing in practice; pathological report streams are
#: what it defends against.
DEFAULT_MAX_IDENTITIES = 32


@dataclass
class FailureBucket:
    """One cluster of equivalent failure reports."""

    key: str
    kind: str
    pc: int
    representative: FailureReport
    #: Arrival ordinal of the bucket's first report (0-based).  Triage
    #: order tie-breaks on it so "which bucket next" is a total order.
    first_seen: int = 0
    count: int = 0
    exact_identities: Dict[str, int] = field(default_factory=dict)
    #: Exact-identity hits dropped by the per-bucket bound (bounded
    #: clusterers only); 0 means the histogram is complete.
    identity_overflow: int = 0

    def add(self, report: FailureReport) -> None:
        self.count += 1
        identity = report.identity()
        self.exact_identities[identity] = \
            self.exact_identities.get(identity, 0) + 1

    def trim(self, max_identities: Optional[int]) -> None:
        """Cap the identity histogram, folding evicted hits into
        ``identity_overflow``.  Eviction order is total (count ascending,
        identity descending evicts first), so any sequence of adds/merges
        that reaches the same histogram trims the same way."""
        if max_identities is None or \
                len(self.exact_identities) <= max_identities:
            return
        ranked = sorted(self.exact_identities.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        for identity, hits in ranked[max_identities:]:
            del self.exact_identities[identity]
            self.identity_overflow += hits

    @property
    def call_path_variants(self) -> int:
        """How many distinct call paths reach this failure site."""
        return len(self.exact_identities)


class FailureClusterer:
    """Buckets incoming failure reports by failure site.

    ``max_identities`` bounds each bucket's exact-identity histogram
    (``None`` = unbounded, the exact-mode reference): the top entries by
    hit count survive, and evicted hits accumulate in the bucket's
    ``identity_overflow`` — so a streaming shard's clusterer state stays
    O(buckets x cap) no matter how many reports pass through it.
    """

    def __init__(self, max_identities: Optional[int] = None) -> None:
        self._buckets: Dict[str, FailureBucket] = {}
        self.total_reports = 0
        self.max_identities = max_identities

    @staticmethod
    def site_key(report: FailureReport) -> str:
        return f"{report.kind.value}@{report.pc}"

    def add(self, report: FailureReport) -> FailureBucket:
        self.total_reports += 1
        key = self.site_key(report)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = FailureBucket(key=key, kind=report.kind.value,
                                   pc=report.pc, representative=report,
                                   first_seen=self.total_reports - 1)
            self._buckets[key] = bucket
        bucket.add(report)
        bucket.trim(self.max_identities)
        return bucket

    def buckets(self) -> List[FailureBucket]:
        """All buckets, most-hit first (WER-style triage order).

        The order is total — count, then arrival order of the bucket's
        first report, then key — so two equally-hot buckets always triage
        the same way regardless of dict iteration or report interleaving.
        """
        return sorted(self._buckets.values(),
                      key=lambda b: (-b.count, b.first_seen, b.key))

    def bucket_for(self, report: FailureReport) -> Optional[FailureBucket]:
        return self._buckets.get(self.site_key(report))

    # -- cross-shard merging -------------------------------------------------

    def merge(self, other: "FailureClusterer") -> None:
        """Fold another clusterer's buckets into this one.

        Associative and commutative: counts and exact-identity histograms
        add; ``first_seen`` takes the minimum (shard-local arrival ordinals
        — any total order works as long as the merged result is independent
        of merge order); the representative is the one from the bucket with
        the smaller ``first_seen``, tie-broken on report identity, so every
        merge order elects the same sample.
        """
        self.total_reports += other.total_reports
        for key, bucket in other._buckets.items():
            mine = self._buckets.get(key)
            if mine is None:
                mine = self._buckets[key] = FailureBucket(
                    key=bucket.key, kind=bucket.kind, pc=bucket.pc,
                    representative=bucket.representative,
                    first_seen=bucket.first_seen, count=bucket.count,
                    exact_identities=dict(bucket.exact_identities),
                    identity_overflow=bucket.identity_overflow)
                mine.trim(self.max_identities)
                continue
            if (bucket.first_seen, bucket.representative.identity()) < \
                    (mine.first_seen, mine.representative.identity()):
                mine.representative = bucket.representative
            mine.first_seen = min(mine.first_seen, bucket.first_seen)
            mine.count += bucket.count
            mine.identity_overflow += bucket.identity_overflow
            for identity, hits in bucket.exact_identities.items():
                mine.exact_identities[identity] = \
                    mine.exact_identities.get(identity, 0) + hits
            mine.trim(self.max_identities)

    def state(self) -> Dict:
        """JSON-able snapshot (rides inside a ``shard_state`` envelope)."""
        from ..fleet.wire import failure_report_to_body

        buckets = []
        for b in self.buckets():
            entry = {
                "key": b.key,
                "kind": b.kind,
                "pc": b.pc,
                "first_seen": b.first_seen,
                "count": b.count,
                "exact": dict(b.exact_identities),
                "representative":
                    failure_report_to_body(b.representative),
            }
            # Absence-encoded so unbounded (exact-mode) clusterer state
            # stays byte-identical to the pre-bounding wire format.
            if b.identity_overflow:
                entry["overflow"] = b.identity_overflow
            buckets.append(entry)
        return {
            "total_reports": self.total_reports,
            "buckets": buckets,
        }

    @classmethod
    def from_state(cls, state: Dict) -> "FailureClusterer":
        from ..fleet.wire import failure_report_from_body

        clusterer = cls()
        clusterer.total_reports = state["total_reports"]
        for entry in state["buckets"]:
            bucket = FailureBucket(
                key=entry["key"], kind=entry["kind"], pc=entry["pc"],
                representative=failure_report_from_body(
                    entry["representative"]),
                first_seen=entry["first_seen"], count=entry["count"],
                exact_identities=dict(entry["exact"]),
                identity_overflow=entry.get("overflow", 0))
            clusterer._buckets[bucket.key] = bucket
        return clusterer

    def next_to_diagnose(self,
                         already_diagnosed: Tuple[str, ...] = ()
                         ) -> Optional[FailureBucket]:
        """The most frequent bucket without a campaign yet — how a
        deployment prioritizes its diagnosis budget."""
        skip = set(already_diagnosed)
        for bucket in self.buckets():
            if bucket.key not in skip:
                return bucket
        return None

    def summary(self) -> str:
        lines = [f"{self.total_reports} reports in "
                 f"{len(self._buckets)} buckets"]
        for bucket in self.buckets():
            lines.append(
                f"  {bucket.key:<28} hits={bucket.count:<5} "
                f"call-paths={bucket.call_path_variants}")
        return "\n".join(lines)
