"""Slice refinement (§3.2): turning runtime traces into refined slices.

Refinement does two things to the statically tracked window, using the
control-flow (Intel PT) and data-flow (watchpoint) traces collected from
monitored production runs:

1. **Removes** statements that never execute in the monitored runs — static
   slicing is path-insensitive and overapproximate, so the intersection of
   the slice with observed control flow is what actually pertains to the
   failure (§3.2.2).
2. **Adds** statements discovered by data-flow tracking: watchpoint traps
   whose program counter lies outside the window are accesses to tracked
   data that static slicing missed because it has no alias analysis
   (§3.2.3).

It also reconstructs a *global* event order for each run: PT streams are
only per-thread (per-core) ordered, so cross-thread order is recovered from
the globally sequenced watchpoint trap records — exactly the division of
labour the paper describes ("Gist tracks the total order of memory accesses
that it monitors to increase the accuracy of the control flow shown in the
failure sketch").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..hw.watchpoints import TrapRecord
from ..runtime.failures import FailureReport


@dataclass
class MonitoredRun:
    """Everything one monitored production run reports back to the server."""

    run_id: int
    endpoint_id: int = -1
    failed: bool = False
    failure: Optional[FailureReport] = None
    #: Per-thread executed instruction uids, in per-thread (per-core) order,
    #: as reconstructed by the PT decoder.
    executed: Dict[int, List[int]] = field(default_factory=dict)
    #: Watchpoint trap records, globally ordered by ``seq``.
    traps: List[TrapRecord] = field(default_factory=list)
    #: Client-side overhead of this run, as a fraction.
    overhead: float = 0.0
    #: PT bytes shipped (for §5.3-style accounting).
    trace_bytes: int = 0
    #: Cohort multiplicity: how many real clients this run stands for.
    #: A cohort endpoint executes one representative run and reports that
    #: ``cohort`` members of its cohort exhibited the same outcome; the
    #: server folds the multiplicity into recurrence totals and predictor
    #: counts.  1 (the default) is an ordinary single client.
    cohort: int = 1
    #: Failure predictors extracted *on the endpoint* (a frozenset of
    #: :class:`repro.core.predictors.Predictor`), so the server ingests
    #: pre-extracted predictor sets instead of re-walking every trace on
    #: its single aggregation thread.  ``None`` means "not extracted
    #: client-side" (legacy payloads, hand-built runs, anonymized copies)
    #: and makes the server fall back to its own extraction.
    predictors: Optional[frozenset] = None

    def executed_uids(self) -> Set[int]:
        out: Set[int] = set()
        for seq in self.executed.values():
            out.update(seq)
        for trap in self.traps:
            out.add(trap.pc)
        return out


@dataclass(frozen=True)
class OrderedEvent:
    """One globally-ordered event of a run (see :func:`global_event_order`).

    ``anchored`` is True when the position comes from a watchpoint trap
    (exact global order) rather than interpolation (thread-local order
    pinned to the preceding anchor).
    """

    sort_key: Tuple[int, int, int]
    tid: int
    uid: int
    anchored: bool = False
    is_write: Optional[bool] = None
    value: Optional[int] = None
    address: Optional[int] = None


def global_event_order(run: MonitoredRun) -> List[OrderedEvent]:
    """Merge per-thread PT sequences into one global order via trap anchors.

    Each thread's decoded sequence keeps its internal order; events that
    correspond to watchpoint traps get that trap's global sequence number as
    their primary key, and the remaining events inherit the key of the
    nearest preceding anchor in their thread (or 0 before any anchor).
    """
    events: List[OrderedEvent] = []
    # Group traps per (thread, pc) into FIFO queues.  Matching PT
    # occurrences against a single per-thread queue would stall whenever
    # an *untraced* access trapped (its pc never shows up in the PT
    # stream), mis-ghosting every later trap; per-pc queues are immune to
    # that head-of-line blocking.
    trap_queues: Dict[int, Dict[int, List[TrapRecord]]] = {}
    for trap in sorted(run.traps, key=lambda t: t.seq):
        trap_queues.setdefault(trap.tid, {}).setdefault(
            trap.pc, []).append(trap)

    for tid, seq in sorted(run.executed.items()):
        queues = trap_queues.get(tid, {})
        anchor = 0
        for local_index, uid in enumerate(seq):
            queue = queues.get(uid)
            if queue:
                trap_here = queue.pop(0)
                anchor = trap_here.seq
                events.append(OrderedEvent(
                    sort_key=(anchor, tid, local_index), tid=tid, uid=uid,
                    anchored=True, is_write=trap_here.is_write,
                    value=trap_here.value, address=trap_here.address))
            else:
                events.append(OrderedEvent(
                    sort_key=(anchor, tid, local_index), tid=tid, uid=uid))
    # Traps whose pc never appears in the thread's PT stream: data-flow
    # tracking caught an access outside any traced window.  They are events
    # in their own right (and the source of "discovered" statements).
    for tid, queues in trap_queues.items():
        for queue in queues.values():
            for trap in queue:
                events.append(OrderedEvent(
                    sort_key=(trap.seq, tid, 1 << 30), tid=tid, uid=trap.pc,
                    anchored=True, is_write=trap.is_write,
                    value=trap.value, address=trap.address))
    events.sort(key=lambda e: e.sort_key)
    return events


@dataclass
class RefinementResult:
    """The refined view of one tracked window across many runs."""

    window_uids: Set[int]
    executed_uids: Set[int] = field(default_factory=set)
    removed_uids: Set[int] = field(default_factory=set)
    discovered_uids: Set[int] = field(default_factory=set)

    def refined_uids(self) -> Set[int]:
        """(window ∩ executed) ∪ discovered — the sketch's statement set."""
        return (self.window_uids & self.executed_uids) | self.discovered_uids


def refine(window_uids: Set[int],
           runs: Sequence[MonitoredRun],
           slice_uids: Optional[Set[int]] = None) -> RefinementResult:
    """Refine a window against the monitored runs (failing + successful).

    ``slice_uids`` — the full static slice.  Watchpoint traps land on every
    access to a watched address, including statements with no dependence on
    the failure (another thread's routine *read* of the same lock word);
    a trap becomes a *discovered* statement when it can actually bear on
    the failure: every **write** to watched data changes the data item the
    failing statement consumes (these are exactly the aliasing cases static
    slicing missed, §3.2.3), while a read is only kept if the slice already
    relates it to the failure.  Traps outside that filter still contribute
    to predictors and ordering — they just don't add sketch statements.
    """
    result = RefinementResult(window_uids=set(window_uids))
    for run in runs:
        executed = run.executed_uids()
        result.executed_uids |= executed
        for trap in run.traps:
            if trap.pc in window_uids:
                continue
            if trap.is_write or slice_uids is None or \
                    trap.pc in slice_uids:
                result.discovered_uids.add(trap.pc)
    result.removed_uids = result.window_uids - result.executed_uids
    return result
