"""Failure sketch accuracy metrics (§5.2).

The paper scores a Gist-computed sketch ΦG against a hand-written ideal
sketch ΦI on two axes:

- **Relevance** ``AR = 100 · |ΦG ∩ ΦI| / |ΦG ∪ ΦI|`` — does the sketch
  contain the ideal statements and nothing else?
- **Ordering** ``AO = 100 · (1 − τ(ΦG, ΦI) / #pairs)`` — does the sketch
  order the shared-memory accesses as the ideal does?  τ is the Kendall
  tau distance (number of discordant pairs) over the elements common to
  both orders.

Overall accuracy is the unweighted mean of the two.

Granularity: the paper measures membership over LLVM instructions; our
stable cross-compiler unit is the source *statement* ``(function, line)``
(each MiniC statement lowers to a deterministic group of GIR instructions),
so both metrics operate on statement keys.  Sizes in IR instructions are
still reported in Table 1 via :meth:`FailureSketch.size_ir`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import List, Sequence, Set, Tuple

from .sketch import FailureSketch

StatementKey = Tuple[str, int]


@dataclass
class IdealSketch:
    """The hand-written ground truth for one corpus bug (§3.2's "ideal
    failure sketch": only statements with data/control dependencies to the
    failure, plus the best failure-predicting events)."""

    bug: str
    statements: Set[StatementKey] = field(default_factory=set)
    #: Expected global order of the shared-memory-access statements.
    access_order: List[StatementKey] = field(default_factory=list)
    #: The statements a fix must address; the evaluation oracle ("does the
    #: sketch contain the root cause?") checks for these.
    root_cause: Set[StatementKey] = field(default_factory=set)
    #: Value-predictor root criteria: (statement, value) pairs; the top
    #: value predictor must match one of them (input-dependent bugs).
    value_roots: List[Tuple[StatementKey, int]] = field(default_factory=list)
    #: Source LOC / IR sizes for Table 1's "ideal sketch size" column.
    size_loc: int = 0
    size_ir: int = 0


@dataclass
class AccuracyReport:
    """Relevance and ordering accuracy for one sketch (percentages)."""
    relevance: float
    ordering: float

    @property
    def overall(self) -> float:
        return (self.relevance + self.ordering) / 2.0


def kendall_tau_distance(a: Sequence, b: Sequence) -> Tuple[int, int]:
    """(discordant_pairs, total_pairs) over the common elements of two
    orders.  Elements present in only one sequence are ignored."""
    common = [x for x in a if x in set(b)]
    pos_b = {x: i for i, x in enumerate(b)}
    discordant = 0
    total = 0
    for x, y in combinations(common, 2):
        total += 1
        if pos_b[x] > pos_b[y]:
            discordant += 1
    return discordant, total


def relevance_accuracy(sketch: FailureSketch,
                       ideal: IdealSketch) -> float:
    """``AR = 100 * |G∩I| / |G∪I|`` over statement keys."""
    got: Set[StatementKey] = set(sketch.statements())
    want = ideal.statements
    union = got | want
    if not union:
        return 100.0
    return 100.0 * len(got & want) / len(union)


def ordering_accuracy(sketch: FailureSketch, ideal: IdealSketch) -> float:
    """``AO = 100 * (1 - tau/pairs)`` over the common access order."""
    discordant, total = kendall_tau_distance(sketch.access_order,
                                             ideal.access_order)
    if total == 0:
        # Paper: the pair set "can't be zero, because both failure sketches
        # will at least contain the failing instruction" — with fewer than
        # two common accesses there is nothing to disorder.
        return 100.0
    return 100.0 * (1.0 - discordant / total)


def score(sketch: FailureSketch, ideal: IdealSketch) -> AccuracyReport:
    """Score a sketch against its hand-written ideal (§5.2)."""
    return AccuracyReport(
        relevance=relevance_accuracy(sketch, ideal),
        ordering=ordering_accuracy(sketch, ideal),
    )
