"""The cooperative deployment loop: server + a fleet of endpoints.

This is the simulated equivalent of the paper's evaluation environment
(1,136 simulated user endpoints, §5): a fleet of :class:`GistClient`
endpoints executes a stream of workloads; failures bootstrap a server-side
campaign; instrumentation patches go out; monitored runs come back;
Adaptive Slice Tracking iterates until the sketch satisfies the stop
criterion or the slice is exhausted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..lang.ir import Module
from ..runtime.failures import FailureReport
from .adaptive import DEFAULT_SIGMA
from .client import GistClient
from .server import GistServer, IterationResult
from .sketch import FailureSketch
from .workload import Workload, WorkloadFactory

#: Decide whether a sketch is good enough to stop AsT.  The evaluation
#: passes the ideal-sketch oracle; interactive use passes a developer
#: callback.  ``None`` means "stop at the first sketch produced".
StopPredicate = Callable[[FailureSketch], bool]


@dataclass
class CampaignStats:
    """What the evaluation tables read off a finished campaign."""

    bug: str
    found: bool = False
    iterations: int = 0
    failure_recurrences: int = 0
    total_runs: int = 0
    monitored_runs: int = 0
    bootstrap_runs: int = 0
    avg_overhead_percent: float = 0.0
    max_overhead_percent: float = 0.0
    wall_seconds: float = 0.0
    offline_seconds: float = 0.0
    sketch: Optional[FailureSketch] = None
    iteration_results: List[IterationResult] = field(default_factory=list)


class CooperativeDeployment:
    """Drives one program's fleet and its diagnosis campaigns."""

    def __init__(self, module: Module, workload_factory: WorkloadFactory,
                 endpoints: int = 8, bug: str = "bug",
                 ptwrite: bool = False,
                 extended_predicates: bool = False) -> None:
        if endpoints < 1:
            raise ValueError("need at least one endpoint")
        self.module = module
        self.workload_factory = workload_factory
        self.bug = bug
        self.server = GistServer(module,
                                 extended_predicates=extended_predicates)
        self.clients = [GistClient(module, endpoint_id=i, ptwrite=ptwrite)
                        for i in range(endpoints)]
        self._next_run = 0

    # -- plumbing ------------------------------------------------------------

    def _draw(self) -> Tuple[GistClient, Workload, int]:
        run_id = self._next_run
        self._next_run += 1
        client = self.clients[run_id % len(self.clients)]
        workload = self.workload_factory(run_id)
        return client, workload, run_id

    # -- phase 0: wait for the first failure ----------------------------------

    def wait_for_failure(self, max_runs: int = 10_000
                         ) -> Tuple[Optional[FailureReport], int]:
        """Run the fleet uninstrumented until some run fails."""
        for _ in range(max_runs):
            client, workload, run_id = self._draw()
            result = client.run(workload, patch=None, run_id=run_id)
            if result.outcome.failed:
                return result.outcome.failure, run_id + 1
        return None, max_runs

    # -- the AsT campaign ---------------------------------------------------------

    def run_campaign(
        self,
        initial_sigma: int = DEFAULT_SIGMA,
        stop_when: Optional[StopPredicate] = None,
        max_iterations: int = 10,
        min_failing_per_iteration: int = 1,
        min_successful_per_iteration: int = 3,
        max_runs_per_iteration: int = 400,
        max_bootstrap_runs: int = 10_000,
    ) -> CampaignStats:
        """Full pipeline: bootstrap failure → AsT iterations → sketch."""
        stats = CampaignStats(bug=self.bug)
        t0 = time.perf_counter()

        report, bootstrap_runs = self.wait_for_failure(max_bootstrap_runs)
        stats.bootstrap_runs = bootstrap_runs
        stats.total_runs += bootstrap_runs
        if report is None:
            stats.wall_seconds = time.perf_counter() - t0
            return stats

        campaign = self.server.handle_failure_report(
            self.bug, report, initial_sigma)

        overheads: List[float] = []
        for _ in range(max_iterations):
            campaign.begin_iteration()
            patches = campaign.make_patches(len(self.clients))
            failing = 0
            successful = 0
            for attempt in range(max_runs_per_iteration):
                client, workload, run_id = self._draw()
                patch = patches[client.endpoint_id % len(patches)]
                result = client.run(workload, patch=patch, run_id=run_id)
                stats.total_runs += 1
                stats.monitored_runs += 1
                assert result.monitored is not None
                overheads.append(result.monitored.overhead)
                if campaign.ingest(result.monitored):
                    failing += 1
                elif not result.outcome.failed:
                    successful += 1
                if failing >= min_failing_per_iteration and \
                        successful >= min_successful_per_iteration:
                    break
            iteration = campaign.finish_iteration()
            stats.iteration_results.append(iteration)
            stats.iterations = iteration.iteration
            sketch = iteration.sketch
            if sketch is not None:
                stats.sketch = sketch
                if stop_when is None or stop_when(sketch):
                    stats.found = True
                    break
            if campaign.exhausted:
                break
            campaign.grow()

        stats.failure_recurrences = campaign.total_failure_recurrences
        if overheads:
            stats.avg_overhead_percent = 100.0 * sum(overheads) / len(overheads)
            stats.max_overhead_percent = 100.0 * max(overheads)
        stats.offline_seconds = self.server.offline_analysis_seconds
        stats.wall_seconds = time.perf_counter() - t0
        return stats
