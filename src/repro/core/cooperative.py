"""The cooperative deployment loop: server + a fleet of endpoints.

This is the simulated equivalent of the paper's evaluation environment
(1,136 simulated user endpoints, §5): a fleet of :class:`GistClient`
endpoints executes a stream of workloads; failures bootstrap a server-side
campaign; instrumentation patches go out; monitored runs come back;
Adaptive Slice Tracking iterates until the sketch satisfies the stop
criterion or the slice is exhausted.

Client workloads are embarrassingly parallel — each run gets its own
interpreter, PT driver, and watchpoint unit, and all static analysis lives
in an immutable shared :class:`~repro.analysis.context.AnalysisContext` —
so the fleet executes them in batches of ``fleet_workers`` on a thread
pool.  Determinism is preserved by construction: batch results are
aggregated strictly in run-id order on the server thread, the server stops
consuming at exactly the run where the sequential loop would have stopped,
and any in-flight surplus runs of the final batch are discarded before
they touch campaign state (a real fleet also keeps executing after the
server has what it needs).  ``fleet_workers=1`` and ``fleet_workers=N``
therefore produce byte-identical campaign statistics.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..analysis.context import AnalysisContext
from ..lang.ir import Module
from ..runtime.failures import FailureReport
from .adaptive import DEFAULT_SIGMA
from .client import GistClient
from .server import GistServer, IterationResult
from .sketch import FailureSketch
from .workload import Workload, WorkloadFactory

#: Decide whether a sketch is good enough to stop AsT.  The evaluation
#: passes the ideal-sketch oracle; interactive use passes a developer
#: callback.  ``None`` means "stop at the first sketch produced".
StopPredicate = Callable[[FailureSketch], bool]


@dataclass
class CampaignStats:
    """What the evaluation tables read off a finished campaign."""

    bug: str
    found: bool = False
    iterations: int = 0
    failure_recurrences: int = 0
    total_runs: int = 0
    monitored_runs: int = 0
    bootstrap_runs: int = 0
    avg_overhead_percent: float = 0.0
    max_overhead_percent: float = 0.0
    wall_seconds: float = 0.0
    offline_seconds: float = 0.0
    sketch: Optional[FailureSketch] = None
    iteration_results: List[IterationResult] = field(default_factory=list)


class CooperativeDeployment:
    """Drives one program's fleet and its diagnosis campaigns."""

    def __init__(self, module: Module, workload_factory: WorkloadFactory,
                 endpoints: int = 8, bug: str = "bug",
                 ptwrite: bool = False,
                 extended_predicates: bool = False,
                 context: Optional[AnalysisContext] = None,
                 fleet_workers: int = 1) -> None:
        if endpoints < 1:
            raise ValueError("need at least one endpoint")
        if fleet_workers < 1:
            raise ValueError("need at least one fleet worker")
        self.module = module
        self.workload_factory = workload_factory
        self.bug = bug
        self.server = GistServer(module,
                                 extended_predicates=extended_predicates,
                                 context=context)
        self.clients = [GistClient(module, endpoint_id=i, ptwrite=ptwrite)
                        for i in range(endpoints)]
        #: Client runs executed concurrently per batch (1 = sequential).
        self.fleet_workers = fleet_workers
        self._next_run = 0
        self._pool: Optional[ThreadPoolExecutor] = None

    # -- plumbing ------------------------------------------------------------

    def _draw(self) -> Tuple[GistClient, Workload, int]:
        run_id = self._next_run
        self._next_run += 1
        client = self.clients[run_id % len(self.clients)]
        workload = self.workload_factory(run_id)
        return client, workload, run_id

    def _rewind(self, next_run_id: int) -> None:
        """Reset the run stream to ``next_run_id``.

        Called after the server stops consuming mid-batch: surplus in-flight
        results are discarded and their run ids handed out again, so the
        consumed stream is identical to the sequential one (workload
        factories are pure functions of the run id).
        """
        self._next_run = next_run_id

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.fleet_workers,
                thread_name_prefix="gist-fleet")
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "CooperativeDeployment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _execute_batch(
        self, size: int, patches: Optional[Sequence] = None,
    ) -> List[Tuple[Tuple[GistClient, Workload, int], object]]:
        """Draw and execute up to ``size`` runs, concurrently when
        ``fleet_workers > 1``; results come back in run-id order."""
        drawn = [self._draw() for _ in range(size)]

        def one(item: Tuple[GistClient, Workload, int]):
            client, workload, run_id = item
            patch = None
            if patches:
                patch = patches[client.endpoint_id % len(patches)]
            return client.run(workload, patch=patch, run_id=run_id)

        if self.fleet_workers <= 1 or len(drawn) <= 1:
            results = [one(item) for item in drawn]
        else:
            results = list(self._ensure_pool().map(one, drawn))
        return list(zip(drawn, results))

    # -- phase 0: wait for the first failure ----------------------------------

    def wait_for_failure(self, max_runs: int = 10_000
                         ) -> Tuple[Optional[FailureReport], int]:
        """Run the fleet uninstrumented until some run fails.

        Returns the first failure in run-id order; with ``fleet_workers >
        1`` later runs of the failing batch may already have executed, but
        they are discarded and re-drawn, keeping the consumed run stream
        identical to sequential execution.
        """
        consumed = 0
        while consumed < max_runs:
            size = min(self.fleet_workers, max_runs - consumed)
            for (client, workload, run_id), result \
                    in self._execute_batch(size):
                consumed += 1
                if result.outcome.failed:
                    self._rewind(run_id + 1)
                    return result.outcome.failure, consumed
        return None, max_runs

    # -- the AsT campaign ---------------------------------------------------------

    def run_campaign(
        self,
        initial_sigma: int = DEFAULT_SIGMA,
        stop_when: Optional[StopPredicate] = None,
        max_iterations: int = 10,
        min_failing_per_iteration: int = 1,
        min_successful_per_iteration: int = 3,
        max_runs_per_iteration: int = 400,
        max_bootstrap_runs: int = 10_000,
    ) -> CampaignStats:
        """Full pipeline: bootstrap failure → AsT iterations → sketch."""
        stats = CampaignStats(bug=self.bug)
        t0 = time.perf_counter()
        try:
            return self._run_campaign(
                stats, initial_sigma, stop_when, max_iterations,
                min_failing_per_iteration, min_successful_per_iteration,
                max_runs_per_iteration, max_bootstrap_runs)
        finally:
            stats.wall_seconds = time.perf_counter() - t0
            self.close()

    def _run_campaign(
        self,
        stats: CampaignStats,
        initial_sigma: int,
        stop_when: Optional[StopPredicate],
        max_iterations: int,
        min_failing_per_iteration: int,
        min_successful_per_iteration: int,
        max_runs_per_iteration: int,
        max_bootstrap_runs: int,
    ) -> CampaignStats:
        report, bootstrap_runs = self.wait_for_failure(max_bootstrap_runs)
        stats.bootstrap_runs = bootstrap_runs
        stats.total_runs += bootstrap_runs
        if report is None:
            return stats

        campaign = self.server.handle_failure_report(
            self.bug, report, initial_sigma)

        overheads: List[float] = []
        for _ in range(max_iterations):
            campaign.begin_iteration()
            patches = campaign.make_patches(len(self.clients))
            failing = 0
            successful = 0
            attempts = 0
            satisfied = False
            # Monitored runs execute in concurrent batches; aggregation
            # below stays on this (server) thread, in run-id order.
            while attempts < max_runs_per_iteration and not satisfied:
                size = min(self.fleet_workers,
                           max_runs_per_iteration - attempts)
                for (client, workload, run_id), result \
                        in self._execute_batch(size, patches=patches):
                    attempts += 1
                    stats.total_runs += 1
                    stats.monitored_runs += 1
                    assert result.monitored is not None
                    overheads.append(result.monitored.overhead)
                    if campaign.ingest(result.monitored):
                        failing += 1
                    elif not result.outcome.failed:
                        successful += 1
                    if failing >= min_failing_per_iteration and \
                            successful >= min_successful_per_iteration:
                        self._rewind(run_id + 1)
                        satisfied = True
                        break
            iteration = campaign.finish_iteration()
            stats.iteration_results.append(iteration)
            stats.iterations = iteration.iteration
            sketch = iteration.sketch
            if sketch is not None:
                stats.sketch = sketch
                if stop_when is None or stop_when(sketch):
                    stats.found = True
                    break
            if campaign.exhausted:
                break
            campaign.grow()

        stats.failure_recurrences = campaign.total_failure_recurrences
        if overheads:
            stats.avg_overhead_percent = 100.0 * sum(overheads) / len(overheads)
            stats.max_overhead_percent = 100.0 * max(overheads)
        stats.offline_seconds = self.server.offline_analysis_seconds
        return stats
