"""The cooperative deployment loop: server + a fleet of endpoints.

This is the simulated equivalent of the paper's evaluation environment
(1,136 simulated user endpoints, §5): a fleet of :class:`GistClient`
endpoints executes a stream of workloads; failures bootstrap a server-side
campaign; instrumentation patches go out; monitored runs come back;
Adaptive Slice Tracking iterates until the sketch satisfies the stop
criterion or the slice is exhausted.

Client workloads are embarrassingly parallel — each run gets its own
interpreter, PT driver, and watchpoint unit, and all static analysis lives
in an immutable shared :class:`~repro.analysis.context.AnalysisContext` —
so the fleet executes them in batches of ``fleet_workers`` through a
pluggable **execution engine** (:mod:`repro.fleet.executors`): serial,
thread pool (the default), or a warm process pool that escapes the GIL.
Determinism is preserved by construction, identically for every engine:
batch results are aggregated strictly in run-id order on the server
thread, the server stops consuming at exactly the run where the
sequential loop would have stopped, and any in-flight surplus runs of the
final batch are discarded before they touch campaign state (a real fleet
also keeps executing after the server has what it needs).  Every
``(executor, fleet_workers)`` combination therefore produces
byte-identical campaign statistics and sketches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, \
    TYPE_CHECKING

from ..analysis.context import AnalysisContext
from ..lang.ir import Module
from ..runtime.failures import FailureReport, RunOutcome
from .adaptive import DEFAULT_SIGMA
from .client import ClientRunResult, GistClient
from .server import DiagnosisCampaign, GistServer, IterationResult
from .sketch import FailureSketch
from .workload import Workload, WorkloadFactory

if TYPE_CHECKING:
    from ..fleet.endpoint import FleetEndpoint, RunPlan
    from ..fleet.executors import FleetExecutor
    from ..fleet.faults import FaultPlan
    from ..fleet.transport import FleetTransport

#: The ways client↔server traffic can move.  ``"wire"`` (the default)
#: routes everything — failure reports, patches, monitored runs, acks —
#: through :mod:`repro.fleet` as encoded bytes; ``"socket"`` routes the
#: same bytes over a real Unix-domain/TCP socket pair with frame batching
#: and credit backpressure (:mod:`repro.fleet.socket_transport`);
#: ``"direct"`` is the original in-process object hand-off, kept as the
#: A/B reference.
TRANSPORTS = ("wire", "socket", "direct")

#: The transports that speak encoded bytes end to end — everything the
#: fault layer, cohorts, campaign routing, and journaling require.
WIRE_LIKE_TRANSPORTS = ("wire", "socket")

#: Decide whether a sketch is good enough to stop AsT.  The evaluation
#: passes the ideal-sketch oracle; interactive use passes a developer
#: callback.  ``None`` means "stop at the first sketch produced".
StopPredicate = Callable[[FailureSketch], bool]


@dataclass
class CampaignStats:
    """What the evaluation tables read off a finished campaign."""

    bug: str
    found: bool = False
    iterations: int = 0
    failure_recurrences: int = 0
    total_runs: int = 0
    monitored_runs: int = 0
    bootstrap_runs: int = 0
    avg_overhead_percent: float = 0.0
    max_overhead_percent: float = 0.0
    wall_seconds: float = 0.0
    offline_seconds: float = 0.0
    sketch: Optional[FailureSketch] = None
    iteration_results: List[IterationResult] = field(default_factory=list)
    #: Fleet/transport accounting (wire transport only): message counts,
    #: drops, quarantines, stale discards, crash/churn losses.
    fleet: Optional[Dict] = None
    #: Bounded-memory accounting (see :mod:`repro.core.streaming`):
    #: runs' worth of per-run state held at campaign end (O(runs) exact,
    #: O(1) streaming), the high-water mark of the tracked statistics
    #: footprint, and wire body bytes client-side evidence slicing pruned
    #: before they ever hit the uplink (0 in exact mode).
    tracked_runs: int = 0
    peak_tracked_bytes: int = 0
    payload_bytes_saved: int = 0


class CooperativeDeployment:
    """Drives one program's fleet and its diagnosis campaigns."""

    def __init__(self, module: Module, workload_factory: WorkloadFactory,
                 endpoints: int = 8, bug: str = "bug",
                 ptwrite: bool = False,
                 extended_predicates: bool = False,
                 context: Optional[AnalysisContext] = None,
                 fleet_workers: int = 1,
                 executor: str = "threads",
                 engine: Optional["FleetExecutor"] = None,
                 transport: str = "wire",
                 fault_plan: Optional["FaultPlan"] = None,
                 interp_mode: Optional[str] = None,
                 campaign_key: Optional[str] = None,
                 cohort_model=None,
                 ranker_stripes: int = 1,
                 journal_dir: Optional[str] = None,
                 batch_bytes: Optional[int] = None,
                 batch_ms: Optional[float] = None,
                 socket_family: str = "unix",
                 detectors: Sequence[str] = (),
                 ranker: str = "fmeasure",
                 stats: str = "exact") -> None:
        from ..detect import validate_detectors
        from ..fleet.executors import EXECUTOR_KINDS

        if endpoints < 1:
            raise ValueError("need at least one endpoint")
        if fleet_workers < 1:
            raise ValueError("need at least one fleet worker")
        if executor not in EXECUTOR_KINDS:
            raise ValueError(f"executor must be one of {EXECUTOR_KINDS}")
        if transport not in TRANSPORTS:
            raise ValueError(f"transport must be one of {TRANSPORTS}")
        wire_like = transport in WIRE_LIKE_TRANSPORTS
        if fault_plan is not None and not wire_like:
            raise ValueError("fault injection requires a wire transport")
        if cohort_model is not None and not wire_like:
            raise ValueError("cohort clients require a wire transport")
        if campaign_key is not None and not wire_like:
            raise ValueError("campaign routing requires a wire transport")
        if journal_dir is not None and not wire_like:
            raise ValueError("the campaign journal requires a wire "
                             "transport (envelopes are what it records)")
        if fault_plan is not None and \
                fault_plan.servers.crash_every_ingests > 0 and \
                journal_dir is None:
            raise ValueError("server_crash faults need journal_dir: "
                             "recovery replays the write-ahead journal")
        self.module = module
        self.workload_factory = workload_factory
        self.bug = bug
        #: Detection-subsystem tracers every endpoint attaches to every
        #: run of this deployment (:mod:`repro.detect`), canonicalized so
        #: job descriptors carry one spelling.
        self.detectors = validate_detectors(detectors)
        self.server = GistServer(module,
                                 extended_predicates=extended_predicates,
                                 context=context, stripes=ranker_stripes,
                                 ranker=ranker, stats=stats)
        #: Statistics mode (validated by the server above): ``"exact"`` or
        #: ``"streaming"`` — see :mod:`repro.core.streaming`.
        self.stats_kind = stats
        #: Evidence-slicing bytes saved by clients living in *worker
        #: processes* (their counters can't be read directly; each
        #: JobResult carries the per-run delta instead).
        self._remote_bytes_saved = 0
        # Clients extract predictors endpoint-side, so their extended flag
        # must match the server's for the fleet statistics to line up.
        self.clients = [GistClient(module, endpoint_id=i, ptwrite=ptwrite,
                                   extended_predicates=extended_predicates,
                                   interp_mode=interp_mode,
                                   detectors=self.detectors)
                        for i in range(endpoints)]
        #: Interpreter tier for uninstrumented endpoint runs (None = the
        #: process default; instrumented runs always take the decoded tier).
        self.interp_mode = interp_mode
        #: Client runs executed concurrently per batch (1 = sequential).
        self.fleet_workers = fleet_workers
        #: Which execution engine runs the batches.  An injected ``engine``
        #: overrides the name and stays open across campaigns (the caller
        #: owns its lifecycle — how benchmarks amortize pool start-up).
        self.executor_kind = engine.kind if engine is not None else executor
        self._engine: Optional["FleetExecutor"] = engine
        self._owns_engine = engine is None
        self._module_wire_cache: Optional[Tuple[str, bytes]] = None
        self.transport_mode = transport
        self.fault_plan = fault_plan
        #: Campaign routing key.  ``None`` (solo deployments) keeps every
        #: envelope untagged — byte-identical to the pre-campaign wire
        #: format.  A control plane gives each campaign's deployment its
        #: cluster key; all traffic is then tagged and routed by it.
        self.campaign_key = campaign_key
        #: Cohort model (see :mod:`repro.control.cohort`): when set, each
        #: endpoint stands in for a sampled multiple of real clients.
        self.cohort_model = cohort_model
        self.fleet_transport: Optional["FleetTransport"] = None
        if transport == "wire":
            from ..fleet.transport import FleetTransport

            self.fleet_transport = FleetTransport(endpoints, fault_plan)
        elif transport == "socket":
            from ..fleet.socket_transport import SocketFleetTransport

            socket_kwargs = {}
            if batch_bytes is not None:
                socket_kwargs["batch_bytes"] = batch_bytes
            if batch_ms is not None:
                socket_kwargs["batch_ms"] = batch_ms
            self.fleet_transport = SocketFleetTransport(
                endpoints, fault_plan, family=socket_family,
                **socket_kwargs)
        #: Directory for the write-ahead campaign journal (None = off).
        #: The journal file itself opens lazily when a campaign starts.
        self.journal_dir = journal_dir
        self._endpoints: Optional[List["FleetEndpoint"]] = None
        self._runs_lost_to_crash = 0
        self._runs_lost_to_churn = 0
        self._patch_resends = 0
        self._misrouted = 0
        self._server_crashes = 0
        self._acks_delayed = 0
        #: Acks the fault plan deferred: they land at the start of the
        #: next pump round instead of the one they arrived in.
        self._held_acks: List = []
        self._next_run = 0

    @property
    def wire_like(self) -> bool:
        """True for transports that move encoded bytes (wire, socket)."""
        return self.transport_mode in WIRE_LIKE_TRANSPORTS

    # -- plumbing ------------------------------------------------------------

    def _draw(self) -> Tuple[GistClient, Workload, int]:
        run_id = self._next_run
        self._next_run += 1
        client = self.clients[run_id % len(self.clients)]
        workload = self.workload_factory(run_id)
        return client, workload, run_id

    def _rewind(self, next_run_id: int) -> None:
        """Reset the run stream to ``next_run_id``.

        Called after the server stops consuming mid-batch: surplus in-flight
        results are discarded and their run ids handed out again, so the
        consumed stream is identical to the sequential one (workload
        factories are pure functions of the run id).
        """
        self._next_run = next_run_id

    def _ensure_engine(self) -> "FleetExecutor":
        if self._engine is None:
            from ..fleet.executors import make_executor

            self._engine = make_executor(self.executor_kind,
                                         self.fleet_workers)
        return self._engine

    @property
    def _pool(self):
        """The engine's live worker pool — None before start / after close."""
        return self._engine.live_pool if self._engine is not None else None

    def close(self) -> None:
        """Shut the execution engine down, stop the socket hub if one is
        running, and close the journal (idempotent).

        Injected engines belong to the caller and are left running.
        """
        if self._engine is not None and self._owns_engine:
            self._engine.close()
            self._engine = None
        transport = self.fleet_transport
        if transport is not None and hasattr(transport, "hub"):
            transport.close()
        if self.server.journal is not None:
            self.server.journal.close()

    def __enter__(self) -> "CooperativeDeployment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _module_wire(self) -> Tuple[str, bytes]:
        """The module as a (digest, pickled blob) pair, computed once —
        remote engines attach it to every job; workers cache by digest."""
        if self._module_wire_cache is None:
            from ..fleet.procpool import module_payload

            self._module_wire_cache = module_payload(self.module)
        return self._module_wire_cache

    def _execute_batch(
        self, size: int, patches: Optional[Sequence] = None,
    ) -> List[Tuple[Tuple[GistClient, Workload, int], object]]:
        """Draw and execute up to ``size`` runs through the engine;
        results come back in run-id order."""
        drawn = [self._draw() for _ in range(size)]
        engine = self._ensure_engine()
        if engine.remote:
            return list(zip(drawn, self._run_remote_direct(drawn, patches)))

        def one(item: Tuple[GistClient, Workload, int]):
            client, workload, run_id = item
            patch = None
            if patches:
                patch = patches[client.endpoint_id % len(patches)]
            return client.run(workload, patch=patch, run_id=run_id)

        return list(zip(drawn, engine.map(one, drawn)))

    def _run_remote_direct(self, drawn, patches) -> List[ClientRunResult]:
        """Direct-transport batch on a remote engine.

        Jobs carry the patch each client would have applied (after its
        :meth:`~repro.core.client.GistClient.prepare_patch` transform,
        which must happen before the job leaves this process); results
        come back as wire envelopes and are decoded into the same
        :class:`ClientRunResult` shape the in-process path returns.
        """
        from ..fleet import wire
        from ..fleet.executors import RunJob

        digest, blob = self._module_wire()
        jobs = []
        for client, workload, run_id in drawn:
            patch = None
            if patches:
                patch = patches[client.endpoint_id % len(patches)]
            patch = client.prepare_patch(patch)
            jobs.append(RunJob(
                run_id=run_id, endpoint_id=client.endpoint_id,
                workload=workload, module_digest=digest, module_blob=blob,
                patch_blob=(wire.encode_patch(patch)
                            if patch is not None else None),
                ptwrite=client.ptwrite,
                extended=client.extended_predicates,
                interp_mode=client.interp_mode,
                detectors=client.detectors))
        results: List[ClientRunResult] = []
        for job_result in self._ensure_engine().run_jobs(jobs):
            self._remote_bytes_saved += job_result.bytes_saved
            failure = None
            if job_result.failure_blob is not None:
                failure = wire.decode_message(job_result.failure_blob).payload
            monitored = None
            if job_result.monitored_blob is not None:
                monitored = wire.decode_message(
                    job_result.monitored_blob).payload
            results.append(ClientRunResult(
                outcome=RunOutcome(failed=job_result.failed,
                                   failure=failure),
                monitored=monitored))
        return results

    # -- wire transport plumbing ----------------------------------------------

    def _fleet(self) -> List["FleetEndpoint"]:
        """The wire-speaking endpoint wrappers (built lazily so callers may
        swap ``self.clients`` for instrumented variants first)."""
        from ..fleet.endpoint import FleetEndpoint

        if self._endpoints is None or \
                len(self._endpoints) != len(self.clients) or \
                any(e.client is not c
                    for e, c in zip(self._endpoints, self.clients)):
            self._endpoints = [
                FleetEndpoint(client, self.fleet_transport, self.fault_plan,
                              len(self.clients),
                              cohort_model=self.cohort_model)
                for client in self.clients]
        return self._endpoints

    def _execute_batch_wire(self, size: int):
        """Wire-mode batch: endpoints execute and *encode*; nothing touches
        the transport here — the aggregation thread transmits in run-id
        order, which keeps seeded fault schedules deterministic for any
        ``fleet_workers`` value."""
        fleet = self._fleet()
        drawn = [self._draw() for _ in range(size)]
        engine = self._ensure_engine()
        if engine.remote:
            return list(zip(drawn, self._run_remote_wire(fleet, drawn)))

        def one(item: Tuple[GistClient, Workload, int]):
            _client, workload, run_id = item
            return fleet[run_id % len(fleet)].execute(
                workload, run_id, campaign=self.campaign_key)

        return list(zip(drawn, engine.map(one, drawn)))

    def _run_remote_wire(self, fleet: List["FleetEndpoint"], drawn):
        """Wire-mode batch on a remote engine.

        Fault verdicts, patch staleness, and straggle flags are pure
        endpoint-side state, so each run's :class:`RunPlan` is resolved
        here first; only fault-free runs become jobs.  Workers return the
        same wire envelopes :meth:`FleetEndpoint.execute` would have
        encoded, and :meth:`FleetEndpoint.package` re-attaches the plan —
        so downstream transport traffic is byte-identical to the
        in-process engines.
        """
        from ..fleet import wire
        from ..fleet.endpoint import RUN_OK
        from ..fleet.executors import RunJob

        digest, blob = self._module_wire()
        plans: List[Tuple["FleetEndpoint", "RunPlan"]] = []
        jobs = []
        for _client, workload, run_id in drawn:
            endpoint = fleet[run_id % len(fleet)]
            plan = endpoint.plan_run(run_id, campaign=self.campaign_key)
            plans.append((endpoint, plan))
            if plan.kind != RUN_OK:
                continue
            patch = endpoint.client.prepare_patch(plan.patch)
            jobs.append(RunJob(
                run_id=run_id, endpoint_id=endpoint.endpoint_id,
                workload=workload, module_digest=digest, module_blob=blob,
                patch_blob=(wire.encode_patch(patch)
                            if patch is not None else None),
                patch_epoch=plan.patch_epoch,
                ptwrite=endpoint.client.ptwrite,
                extended=endpoint.client.extended_predicates,
                interp_mode=endpoint.client.interp_mode,
                detectors=endpoint.client.detectors,
                cohort=plan.cohort,
                campaign_key=self.campaign_key))
        job_results = iter(self._ensure_engine().run_jobs(jobs))
        results = []
        for endpoint, plan in plans:
            if plan.kind != RUN_OK:
                results.append((plan.kind, []))
                continue
            job_result = next(job_results)
            self._remote_bytes_saved += job_result.bytes_saved
            results.append(endpoint.package(
                plan, job_result.failed, job_result.failure_blob,
                job_result.monitored_blob))
        return results

    def _transmit(self, epoch: int, run_id: int, messages) -> None:
        """Push one run's encoded messages through the fault layer."""
        for msg_type, payload, straggles in messages:
            self.fleet_transport.send_to_server(
                payload, msg_type=msg_type, key=(epoch, run_id, msg_type),
                straggle=straggles)

    # -- journal + simulated server crashes -----------------------------------

    def _journal_path(self) -> str:
        import os
        import re

        safe = re.sub(r"[^A-Za-z0-9_.-]", "_", self.bug) or "campaign"
        return os.path.join(self.journal_dir, f"{safe}.wal")

    def _open_journal(self) -> None:
        """Attach a fresh write-ahead journal to the server (no-op when
        journaling is off or one is already attached)."""
        if self.journal_dir is None or self.server.journal is not None:
            return
        from ..fleet.journal import CampaignJournal

        self.server.journal = CampaignJournal(self._journal_path(),
                                              fresh=True)

    def _live_campaign(self, campaign: Optional[DiagnosisCampaign]
                       ) -> Optional[DiagnosisCampaign]:
        """The *current* server's campaign for the same failure identity —
        a different object after a simulated crash was recovered."""
        if campaign is None:
            return None
        return self.server.campaigns.get(campaign.identity, campaign)

    def _crash_and_recover(self) -> None:
        """Simulate a server kill: throw the live server object away and
        rebuild it from the write-ahead journal, exactly as a restarted
        process would.  The analysis context survives (static artifacts
        are immutable); every piece of campaign state must come back
        through replay."""
        from ..fleet.journal import CampaignJournal, recover_server

        old = self.server
        path = old.journal.path
        old.journal.close()
        state = recover_server(
            path, self.module, context=old.context,
            extended_predicates=old.extended_predicates,
            stripes=old.stripes)
        server = state.server
        server.journal = CampaignJournal(path, fresh=False)
        self.server = server
        self._server_crashes += 1

    def _maybe_crash_server(self, campaign: Optional[DiagnosisCampaign]
                            ) -> Optional[DiagnosisCampaign]:
        """Fire the seeded ``server_crash_every`` fault if this ingest is
        its trigger; returns the (possibly recovered) live campaign."""
        plan = self.fault_plan
        if plan is None or self.server.journal is None or \
                not plan.server_crashes_after(self.server.ingests_applied):
            return campaign
        self._crash_and_recover()
        return self._live_campaign(campaign)

    #: How many uplink payloads one ``recv_many`` pass pops — bounds the
    #: working set without changing drain semantics (the pump loops until
    #: the uplink is empty).
    PUMP_BATCH = 256

    def _pump_uplink(self, campaign: Optional[DiagnosisCampaign],
                     epoch: Optional[int]):
        """Drain the server's inbox, routing each decodable message.

        Returns ``(failing_delta, successful_delta, overheads,
        first_failure_report)``; quarantining, duplicate suppression, and
        stale-epoch discards all happen on the way through.  Acks the
        fault plan defers land at the start of the *next* pump round; a
        triggered ``server_crash_every`` fault swaps the server for its
        journal-recovered twin mid-drain.
        """
        from ..fleet import wire

        failing = 0
        successful = 0
        overheads: List[float] = []
        first_report: Optional[FailureReport] = None
        campaign = self._live_campaign(campaign)
        if self._held_acks:
            held, self._held_acks = self._held_acks, []
            if campaign is not None:
                for message in held:
                    campaign.note_ack(message.payload["endpoint_id"],
                                      message.epoch)
        uplink = self.fleet_transport.uplink
        while True:
            blobs = uplink.recv_many(self.PUMP_BATCH)
            if not blobs:
                break
            for blob in blobs:
                message = self.server.receive(blob)
                if message is None:
                    continue  # quarantined
                if message.campaign != self.campaign_key:
                    # Routed by campaign id: traffic for another campaign
                    # never touches this campaign's statistics.
                    self._misrouted += 1
                    continue
                if message.type == wire.MSG_PATCH_ACK:
                    if campaign is None:
                        continue
                    endpoint_id = message.payload["endpoint_id"]
                    if self.fault_plan is not None and \
                            self.fault_plan.ack_delayed(
                                message.epoch or 0, endpoint_id):
                        self._acks_delayed += 1
                        self._held_acks.append(message)
                    else:
                        campaign.note_ack(endpoint_id, message.epoch)
                elif message.type == wire.MSG_MONITORED_RUN:
                    if campaign is None:
                        continue
                    verdict = campaign.ingest_wire(message)
                    if verdict is None:
                        continue  # stale epoch or duplicate digest
                    recurrence, run = verdict
                    overheads.append(run.overhead)
                    if recurrence:
                        failing += 1
                    elif not run.failed:
                        successful += 1
                    campaign = self._maybe_crash_server(campaign)
                elif message.type == wire.MSG_FAILURE_REPORT:
                    if campaign is not None:
                        campaign.note_unmonitored_report(message.payload)
                    elif first_report is None:
                        first_report = message.payload
        return failing, successful, overheads, first_report

    def _deliver_patches(self, campaign: DiagnosisCampaign,
                         patches: Sequence, epoch: int) -> None:
        """Ship this iteration's patch variants; one resend round covers
        endpoints whose delivery (or ack) was eaten by the fault layer."""
        from ..fleet import wire

        fleet = self._fleet()
        for attempt in (0, 1):
            campaign = self._live_campaign(campaign)
            if attempt == 0:
                targets = fleet
            else:
                targets = [e for e in fleet
                           if e.endpoint_id not in campaign.acked_endpoints]
                if not targets:
                    break
                self._patch_resends += len(targets)
            for endpoint in targets:
                variant = patches[endpoint.endpoint_id % len(patches)]
                self.fleet_transport.send_to_client(
                    endpoint.endpoint_id,
                    wire.encode_patch(variant, epoch=epoch,
                                      campaign=self.campaign_key),
                    msg_type=wire.MSG_PATCH,
                    key=(epoch, endpoint.endpoint_id, attempt))
            for endpoint in targets:
                for ack in endpoint.poll_patches():
                    self.fleet_transport.send_to_server(
                        ack, msg_type=wire.MSG_PATCH_ACK,
                        key=(epoch, endpoint.endpoint_id, "ack", attempt))
            self._pump_uplink(campaign, epoch)

    def payload_bytes_saved(self) -> int:
        """Wire body bytes evidence slicing pruned fleet-wide.

        Local clients are summed directly; clients living in worker
        processes reported per-job deltas on their :class:`JobResult`
        envelopes instead (accumulated in ``_remote_bytes_saved``).
        """
        return (sum(c.payload_bytes_saved for c in self.clients)
                + self._remote_bytes_saved)

    def _fleet_report(self,
                      campaign: Optional[DiagnosisCampaign]) -> Dict:
        from ..fleet.transport import FleetReport

        transport_stats = self.fleet_transport.stats.as_dict()
        if hasattr(self.fleet_transport, "socket_stats"):
            transport_stats["socket"] = self.fleet_transport.socket_stats()
        report = FleetReport(
            transport=transport_stats,
            quarantined=self.server.quarantined_count,
            runs_lost_to_crash=self._runs_lost_to_crash,
            runs_lost_to_churn=self._runs_lost_to_churn,
            client_decode_failures=sum(e.decode_failures
                                       for e in self._fleet()),
            patch_resends=self._patch_resends,
            misrouted=self._misrouted,
            server_crashes=self._server_crashes,
            acks_delayed=self._acks_delayed,
            fault_plan=(self.fault_plan.describe()
                        if self.fault_plan is not None else "none"),
        )
        if self.server.journal is not None:
            report.journal = self.server.journal.stats()
        campaign = self._live_campaign(campaign)
        if campaign is not None:
            report.stale_discarded = campaign.stale_runs_discarded
            report.duplicates_ignored = campaign.duplicate_runs_ignored
            report.unmonitored_reports = campaign.unmonitored_reports
        return report.as_dict()

    # -- phase 0: wait for the first failure ----------------------------------

    def wait_for_failure(self, max_runs: int = 10_000
                         ) -> Tuple[Optional[FailureReport], int]:
        """Run the fleet uninstrumented until some run fails.

        Returns the first failure in run-id order; with ``fleet_workers >
        1`` later runs of the failing batch may already have executed, but
        they are discarded and re-drawn, keeping the consumed run stream
        identical to sequential execution.

        Over the wire transport the failure arrives as an encoded
        ``failure_report`` message (so a faulty fleet may take extra runs
        to bootstrap); the direct transport hands the report over
        in-process, exactly as before.
        """
        if self.wire_like:
            return self._wait_for_failure_wire(max_runs)
        consumed = 0
        while consumed < max_runs:
            size = min(self.fleet_workers, max_runs - consumed)
            for (client, workload, run_id), result \
                    in self._execute_batch(size):
                consumed += 1
                if result.outcome.failed:
                    self._rewind(run_id + 1)
                    return result.outcome.failure, consumed
        return None, max_runs

    def _wait_for_failure_wire(self, max_runs: int
                               ) -> Tuple[Optional[FailureReport], int]:
        from ..fleet.endpoint import RUN_CHURNED, RUN_CRASHED

        fleet = self._fleet()
        for endpoint in fleet:
            endpoint.begin_epoch(0, self._next_run)
        consumed = 0
        while consumed < max_runs:
            size = min(self.fleet_workers, max_runs - consumed)
            for (client, workload, run_id), (kind, messages) \
                    in self._execute_batch_wire(size):
                consumed += 1
                if kind == RUN_CHURNED:
                    self._runs_lost_to_churn += 1
                    continue
                if kind == RUN_CRASHED:
                    self._runs_lost_to_crash += 1
                    continue
                self._transmit(0, run_id, messages)
                _, _, _, report = self._pump_uplink(None, None)
                if report is not None:
                    self._rewind(run_id + 1)
                    return report, consumed
            # Bootstrap has no iteration deadline: delayed reports simply
            # arrive with the next batch instead of being lost forever.
            if self.fleet_transport.flush():
                _, _, _, report = self._pump_uplink(None, None)
                if report is not None:
                    return report, consumed
        return None, max_runs

    # -- the AsT campaign ---------------------------------------------------------

    def run_campaign(
        self,
        initial_sigma: int = DEFAULT_SIGMA,
        stop_when: Optional[StopPredicate] = None,
        max_iterations: int = 10,
        min_failing_per_iteration: int = 1,
        min_successful_per_iteration: int = 3,
        max_runs_per_iteration: int = 400,
        max_bootstrap_runs: int = 10_000,
    ) -> CampaignStats:
        """Full pipeline: bootstrap failure → AsT iterations → sketch."""
        stats = CampaignStats(bug=self.bug)
        t0 = time.perf_counter()
        runner = (self._run_campaign_wire if self.wire_like
                  else self._run_campaign)
        try:
            return runner(
                stats, initial_sigma, stop_when, max_iterations,
                min_failing_per_iteration, min_successful_per_iteration,
                max_runs_per_iteration, max_bootstrap_runs)
        finally:
            stats.wall_seconds = time.perf_counter() - t0
            self.close()

    def _run_campaign(
        self,
        stats: CampaignStats,
        initial_sigma: int,
        stop_when: Optional[StopPredicate],
        max_iterations: int,
        min_failing_per_iteration: int,
        min_successful_per_iteration: int,
        max_runs_per_iteration: int,
        max_bootstrap_runs: int,
    ) -> CampaignStats:
        report, bootstrap_runs = self.wait_for_failure(max_bootstrap_runs)
        stats.bootstrap_runs = bootstrap_runs
        stats.total_runs += bootstrap_runs
        if report is None:
            return stats

        campaign = self.server.handle_failure_report(
            self.bug, report, initial_sigma)

        overheads: List[float] = []
        for _ in range(max_iterations):
            campaign.begin_iteration()
            patches = campaign.make_patches(len(self.clients))
            failing = 0
            successful = 0
            attempts = 0
            satisfied = False
            # Monitored runs execute in concurrent batches; aggregation
            # below stays on this (server) thread, in run-id order.
            while attempts < max_runs_per_iteration and not satisfied:
                size = min(self.fleet_workers,
                           max_runs_per_iteration - attempts)
                for (client, workload, run_id), result \
                        in self._execute_batch(size, patches=patches):
                    attempts += 1
                    stats.total_runs += 1
                    stats.monitored_runs += 1
                    assert result.monitored is not None
                    overheads.append(result.monitored.overhead)
                    if campaign.ingest(result.monitored):
                        failing += 1
                    elif not result.outcome.failed:
                        successful += 1
                    if failing >= min_failing_per_iteration and \
                            successful >= min_successful_per_iteration:
                        self._rewind(run_id + 1)
                        satisfied = True
                        break
            iteration = campaign.finish_iteration()
            stats.iteration_results.append(iteration)
            stats.iterations = iteration.iteration
            sketch = iteration.sketch
            if sketch is not None:
                stats.sketch = sketch
                if stop_when is None or stop_when(sketch):
                    stats.found = True
                    break
            if campaign.exhausted:
                break
            campaign.grow()

        stats.failure_recurrences = campaign.total_failure_recurrences
        stats.tracked_runs = campaign.tracked_runs()
        stats.peak_tracked_bytes = campaign.peak_tracked_bytes
        stats.payload_bytes_saved = self.payload_bytes_saved()
        if overheads:
            stats.avg_overhead_percent = 100.0 * sum(overheads) / len(overheads)
            stats.max_overhead_percent = 100.0 * max(overheads)
        stats.offline_seconds = self.server.offline_analysis_seconds
        return stats

    def _run_campaign_wire(
        self,
        stats: CampaignStats,
        initial_sigma: int,
        stop_when: Optional[StopPredicate],
        max_iterations: int,
        min_failing_per_iteration: int,
        min_successful_per_iteration: int,
        max_runs_per_iteration: int,
        max_bootstrap_runs: int,
    ) -> CampaignStats:
        """The campaign loop over the fleet transport.

        Structurally the same pipeline as :meth:`_run_campaign`, but every
        report, patch, and monitored run crosses the client↔server boundary
        as encoded bytes through the (possibly faulty) transport.  The loop
        itself lives in :class:`CampaignDriver` — stepping it with an
        unbounded budget consumes exactly the same run stream as the old
        monolithic loop, so with no fault plan this path still produces
        byte-identical campaign statistics and sketches — see
        ``tests/fleet/test_transport_equivalence.py``.
        """
        driver = CampaignDriver(
            self, initial_sigma=initial_sigma, stop_when=stop_when,
            max_iterations=max_iterations,
            min_failing_per_iteration=min_failing_per_iteration,
            min_successful_per_iteration=min_successful_per_iteration,
            max_runs_per_iteration=max_runs_per_iteration,
            max_bootstrap_runs=max_bootstrap_runs,
            stats=stats)
        while not driver.done:
            driver.step(None)
        return driver.stats


#: Campaign driver phases.
PHASE_BOOTSTRAP = "bootstrap"
PHASE_MONITOR = "monitor"
PHASE_DONE = "done"


class CampaignDriver:
    """Resumable wire-transport campaign: the AsT loop as a state machine.

    Owns one diagnosis campaign end to end — bootstrap, patch delivery,
    monitored batches, iteration bookkeeping — but yields control after
    every budgeted slice of client runs, so a control plane can
    time-multiplex many concurrent campaigns over one physical fleet.

    :meth:`step` executes at most ``budget`` runs (``None`` = unbounded)
    and returns how many it consumed.  Because batch results are always
    aggregated in run-id order and surplus runs are rewound, the stream of
    runs the campaign *consumes* is invariant to how the budget is
    partitioned: stepping with any sequence of budgets consumes the same
    stream the one-shot loop does, which is what keeps scheduler-sliced
    campaigns byte-identical to solo ones (fault-free plans; under fault
    plans only flush timing can differ, and flushes stay pinned to
    iteration boundaries here).
    """

    def __init__(self, deployment: CooperativeDeployment,
                 initial_sigma: int = DEFAULT_SIGMA,
                 stop_when: Optional[StopPredicate] = None,
                 max_iterations: int = 10,
                 min_failing_per_iteration: int = 1,
                 min_successful_per_iteration: int = 3,
                 max_runs_per_iteration: int = 400,
                 max_bootstrap_runs: int = 10_000,
                 stats: Optional[CampaignStats] = None) -> None:
        if not deployment.wire_like:
            raise ValueError("CampaignDriver requires a wire transport")
        self.dep = deployment
        self.initial_sigma = initial_sigma
        self.stop_when = stop_when
        self.max_iterations = max_iterations
        self.min_failing = min_failing_per_iteration
        self.min_successful = min_successful_per_iteration
        self.max_runs_per_iteration = max_runs_per_iteration
        self.max_bootstrap_runs = max_bootstrap_runs
        self.stats = stats if stats is not None \
            else CampaignStats(bug=deployment.bug)
        self.phase = PHASE_BOOTSTRAP
        self.campaign: Optional[DiagnosisCampaign] = None
        self._overheads: List[float] = []
        # bootstrap state
        self._bootstrap_begun = False
        self._bootstrap_consumed = 0
        # per-iteration state (valid while ``_iter_open``)
        self._iter_open = False
        self._iterations_started = 0
        self._epoch = 0
        self._patches: Sequence = ()
        self._failing = 0
        self._successful = 0
        self._attempts = 0
        self._satisfied = False

    # -- status --------------------------------------------------------------

    @property
    def key(self) -> Optional[str]:
        return self.dep.campaign_key

    @property
    def done(self) -> bool:
        return self.phase == PHASE_DONE

    @property
    def converged(self) -> bool:
        """Found a sketch the stop predicate accepted."""
        return self.stats.found

    def recurrences(self) -> int:
        """Weighted failure recurrences — the scheduler's demand signal
        for how hot this bug currently is in the fleet.

        Exact mode reports the all-time total; streaming mode reports the
        rolling-window count instead (see
        :meth:`DiagnosisCampaign.windowed_recurrences`), so bugs that have
        gone quiet stop holding budget even though their historical
        totals never shrink.
        """
        if self.campaign is None:
            return 0
        return self.campaign.windowed_recurrences()

    # -- stepping ------------------------------------------------------------

    def step(self, budget: Optional[int]) -> int:
        """Advance the campaign by at most ``budget`` client runs."""
        limit = float("inf") if budget is None else budget
        if limit <= 0 or self.done:
            return 0
        if self.phase == PHASE_BOOTSTRAP:
            return self._step_bootstrap(limit)
        return self._step_monitor(limit)

    def _step_bootstrap(self, limit) -> int:
        """Uninstrumented runs until the first failure report lands."""
        dep = self.dep
        from ..fleet.endpoint import RUN_CHURNED, RUN_CRASHED

        if not self._bootstrap_begun:
            for endpoint in dep._fleet():
                endpoint.begin_epoch(0, dep._next_run)
            self._bootstrap_begun = True
        consumed = 0
        while consumed < limit and \
                self._bootstrap_consumed < self.max_bootstrap_runs:
            size = min(dep.fleet_workers, limit - consumed,
                       self.max_bootstrap_runs - self._bootstrap_consumed)
            for (_client, _workload, run_id), (kind, messages) \
                    in dep._execute_batch_wire(size):
                consumed += 1
                self._bootstrap_consumed += 1
                if kind == RUN_CHURNED:
                    dep._runs_lost_to_churn += 1
                    continue
                if kind == RUN_CRASHED:
                    dep._runs_lost_to_crash += 1
                    continue
                dep._transmit(0, run_id, messages)
                _, _, _, report = dep._pump_uplink(None, None)
                if report is not None:
                    dep._rewind(run_id + 1)
                    self._begin_campaign(report)
                    return consumed
            # Bootstrap has no iteration deadline: delayed reports simply
            # arrive with the next batch instead of being lost forever.
            if dep.fleet_transport.flush():
                _, _, _, report = dep._pump_uplink(None, None)
                if report is not None:
                    self._begin_campaign(report)
                    return consumed
        if self._bootstrap_consumed >= self.max_bootstrap_runs:
            # The failure never recurred: give up without a campaign.
            self.stats.bootstrap_runs = self._bootstrap_consumed
            self.stats.total_runs += self._bootstrap_consumed
            self.stats.fleet = dep._fleet_report(None)
            self.phase = PHASE_DONE
        return consumed

    def _begin_campaign(self, report: FailureReport) -> None:
        self.stats.bootstrap_runs = self._bootstrap_consumed
        self.stats.total_runs += self._bootstrap_consumed
        # The journal attaches before the campaign exists, so its first
        # record is this campaign's start.
        self.dep._open_journal()
        self.campaign = self.dep.server.handle_failure_report(
            self.dep.bug, report, self.initial_sigma, key=self.key)
        self.phase = PHASE_MONITOR

    def _step_monitor(self, limit) -> int:
        """Budgeted slice of the AsT iteration loop."""
        dep = self.dep
        campaign = self.campaign
        from ..fleet.endpoint import RUN_CHURNED, RUN_CRASHED

        consumed = 0
        while consumed < limit and self.phase == PHASE_MONITOR:
            if not self._iter_open:
                if self._iterations_started >= self.max_iterations:
                    self._finish()
                    return consumed
                campaign.begin_iteration()
                self._iterations_started += 1
                self._epoch = campaign.epoch
                for endpoint in dep._fleet():
                    endpoint.begin_epoch(self._epoch, dep._next_run)
                self._patches = campaign.make_patches(len(dep.clients))
                dep._deliver_patches(campaign, self._patches, self._epoch)
                campaign = self.campaign = dep._live_campaign(campaign)
                self._failing = 0
                self._successful = 0
                self._attempts = 0
                self._satisfied = False
                self._iter_open = True
            size = min(dep.fleet_workers, limit - consumed,
                       self.max_runs_per_iteration - self._attempts)
            if size > 0:
                for (_client, _workload, run_id), (kind, messages) \
                        in dep._execute_batch_wire(size):
                    self._attempts += 1
                    consumed += 1
                    if kind == RUN_CHURNED:
                        dep._runs_lost_to_churn += 1
                        continue
                    self.stats.total_runs += 1
                    if kind == RUN_CRASHED:
                        dep._runs_lost_to_crash += 1
                        continue
                    dep._transmit(self._epoch, run_id, messages)
                    f_add, s_add, run_overheads, _ = \
                        dep._pump_uplink(campaign, self._epoch)
                    # A simulated server crash inside the pump swapped the
                    # campaign for its journal-recovered twin.
                    campaign = self.campaign = dep._live_campaign(campaign)
                    self._failing += f_add
                    self._successful += s_add
                    self._overheads.extend(run_overheads)
                    self.stats.monitored_runs += len(run_overheads)
                    if self._failing >= self.min_failing and \
                            self._successful >= self.min_successful:
                        dep._rewind(run_id + 1)
                        self._satisfied = True
                        break
            if self._satisfied or \
                    self._attempts >= self.max_runs_per_iteration:
                self._close_iteration()
        return consumed

    def _close_iteration(self) -> None:
        campaign = self.campaign = self.dep._live_campaign(self.campaign)
        iteration = campaign.finish_iteration()
        self.stats.iteration_results.append(iteration)
        self.stats.iterations = iteration.iteration
        self._iter_open = False
        sketch = iteration.sketch
        if sketch is not None:
            self.stats.sketch = sketch
            if self.stop_when is None or self.stop_when(sketch):
                self.stats.found = True
                self._finish()
                return
        if campaign.exhausted:
            self._finish()
            return
        campaign.grow()
        # The iteration deadline has passed: stragglers and held reorders
        # land now, and the epoch check discards them as stale at the next
        # iteration's ingestion.
        self.dep.fleet_transport.flush()

    def _finish(self) -> None:
        stats = self.stats
        campaign = self.campaign = self.dep._live_campaign(self.campaign)
        stats.failure_recurrences = campaign.total_failure_recurrences
        stats.tracked_runs = campaign.tracked_runs()
        stats.peak_tracked_bytes = campaign.peak_tracked_bytes
        stats.payload_bytes_saved = self.dep.payload_bytes_saved()
        if self._overheads:
            stats.avg_overhead_percent = \
                100.0 * sum(self._overheads) / len(self._overheads)
            stats.max_overhead_percent = 100.0 * max(self._overheads)
        stats.offline_seconds = self.dep.server.offline_analysis_seconds
        stats.fleet = self.dep._fleet_report(campaign)
        self.phase = PHASE_DONE
