"""Workload descriptions for production runs.

A :class:`Workload` is one simulated user execution: the program inputs plus
the scheduling circumstances.  Corpus bugs provide workload *factories*
(index → workload) so a cooperative campaign can draw an endless, varied
stream of runs, a small fraction of which fail — the paper's in-production
regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple, Union

from ..runtime.scheduler import FixedScheduler, RandomScheduler, Scheduler

ArgValue = Union[int, str]


@dataclass(frozen=True)
class Workload:
    """One execution's inputs and interleaving."""

    args: Tuple[ArgValue, ...] = ()
    seed: int = 0
    switch_prob: float = 0.02
    #: When set, replay this exact interleaving instead of random
    #: preemption (used to pin down known-failing schedules).
    schedule: Optional[Tuple[Tuple[int, int], ...]] = None
    max_steps: int = 500_000
    entry: str = "main"

    def make_scheduler(self) -> Scheduler:
        if self.schedule is not None:
            return FixedScheduler(list(self.schedule))
        return RandomScheduler(self.seed, self.switch_prob)


#: index → Workload; the stream a cooperative deployment draws from.
WorkloadFactory = Callable[[int], Workload]


def constant_factory(workload: Workload) -> WorkloadFactory:
    """Every run uses the same inputs; only the index varies the seed."""

    def factory(index: int) -> Workload:
        return Workload(args=workload.args, seed=workload.seed + index,
                        switch_prob=workload.switch_prob,
                        max_steps=workload.max_steps, entry=workload.entry)

    return factory


def mixed_factory(workloads: Sequence[Workload]) -> WorkloadFactory:
    """Cycle through several base workloads, reseeding per index."""
    if not workloads:
        raise ValueError("need at least one workload")

    def factory(index: int) -> Workload:
        base = workloads[index % len(workloads)]
        return Workload(args=base.args, seed=base.seed + index,
                        switch_prob=base.switch_prob,
                        schedule=base.schedule,
                        max_steps=base.max_steps, entry=base.entry)

    return factory
